// Tests for the sharded metadata plane: HashRing ownership properties
// (range, determinism, consistency under growth, vnode balance), MetaPlane
// routing + per-shard durability (kill one shard, recover from its own
// image + journal suffix while the others keep serving), the shard-count-1
// digest identity with a plain MiniDfs, placement identity at any shard
// count, per-shard epoch isolation, plane-wide fsck, and the lease-based
// ClientMetaCache discipline (lease hits with zero shard contact, renewal
// on unchanged epoch, refetch on moved epoch, explicit invalidation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "dfs/fsck.hpp"
#include "dfs/hash_ring.hpp"
#include "dfs/meta_client.hpp"
#include "dfs/meta_plane.hpp"
#include "dfs/mini_dfs.hpp"

namespace dd = datanet::dfs;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("datanet_meta_plane_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string path() const { return dir.string(); }
};

dd::MetaPlaneOptions plane_options(std::uint32_t shards,
                                   std::uint64_t block_size = 256) {
  dd::MetaPlaneOptions opt;
  opt.num_shards = shards;
  opt.dfs.block_size = block_size;
  opt.dfs.replication = 3;
  opt.dfs.seed = 42;
  return opt;
}

// Write `records` fixed-size records into `path` through the plane.
void write_file(dd::MetaPlane& plane, const std::string& path,
                std::uint64_t records) {
  auto w = plane.create(path);
  for (std::uint64_t i = 0; i < records; ++i) {
    w.append("record-" + std::to_string(i) + "-payload-xxxxxxxxxxxxxxxx");
  }
  w.close();
}

void write_file(dd::MiniDfs& dfs, const std::string& path,
                std::uint64_t records) {
  auto w = dfs.create(path);
  for (std::uint64_t i = 0; i < records; ++i) {
    w.append("record-" + std::to_string(i) + "-payload-xxxxxxxxxxxxxxxx");
  }
  w.close();
}

// First path of the form "<stem><n>" owned by `shard`.
std::string path_on_shard(const dd::MetaPlane& plane, std::uint32_t shard,
                          const std::string& stem) {
  for (std::uint32_t n = 0;; ++n) {
    std::string cand = stem + std::to_string(n);
    if (plane.shard_of(cand) == shard) return cand;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRing, OwnersInRangeAndDeterministic) {
  const dd::HashRing ring(8, 64, 7);
  const dd::HashRing twin(8, 64, 7);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto h = datanet::common::mix64(i);
    const auto owner = ring.shard_of_hash(h);
    ASSERT_LT(owner, 8u);
    ASSERT_EQ(owner, twin.shard_of_hash(h));
  }
  EXPECT_EQ(ring.shard_of_path("/data/movies.log"),
            twin.shard_of_path("/data/movies.log"));
  EXPECT_LT(ring.shard_of_block(123456), 8u);
}

TEST(HashRing, SingleShardOwnsEverything) {
  const dd::HashRing ring(1);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ring.shard_of_hash(datanet::common::mix64(i)), 0u);
  }
  EXPECT_EQ(ring.shard_of_path("/anything"), 0u);
}

// The defining consistent-hashing property: growing the ring from N to N+1
// shards only moves keys TO the new shard — no key changes owner between two
// pre-existing shards.
TEST(HashRing, GrowthOnlyMovesKeysToTheNewShard) {
  const dd::HashRing small(8, 64, 3);
  const dd::HashRing big(9, 64, 3);
  std::uint64_t moved = 0;
  const std::uint64_t keys = 50000;
  for (std::uint64_t i = 0; i < keys; ++i) {
    const auto h = datanet::common::mix64(i * 0x9e3779b97f4a7c15ULL + 1);
    const auto before = small.shard_of_hash(h);
    const auto after = big.shard_of_hash(h);
    if (after != before) {
      ASSERT_EQ(after, 8u) << "key moved between pre-existing shards";
      ++moved;
    }
  }
  // Roughly 1/9 of the keyspace should move; allow a generous band.
  EXPECT_GT(moved, keys / 20);
  EXPECT_LT(moved, keys / 4);
}

TEST(HashRing, VnodesKeepShardsBalanced) {
  const dd::HashRing ring(8, 64, 0);
  const auto points = ring.points_per_shard();
  ASSERT_EQ(points.size(), 8u);
  for (const auto p : points) EXPECT_EQ(p, 64u);

  std::vector<std::uint64_t> load(8, 0);
  const std::uint64_t keys = 100000;
  for (std::uint64_t i = 0; i < keys; ++i) {
    ++load[ring.shard_of_hash(datanet::common::mix64(i + 17))];
  }
  const double mean = static_cast<double>(keys) / 8.0;
  for (const auto l : load) {
    EXPECT_GT(static_cast<double>(l), 0.6 * mean);
    EXPECT_LT(static_cast<double>(l), 1.5 * mean);
  }
}

// ---------------------------------------------------------------------------
// MetaPlane

TEST(MetaPlane, SingleShardMatchesPlainMiniDfsByteForByte) {
  const auto popt = plane_options(1);
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), popt);
  dd::MiniDfs plain(dd::ClusterTopology::flat(8), popt.dfs);

  write_file(plane, "/data/a", 40);
  write_file(plane, "/data/b", 25);
  write_file(plain, "/data/a", 40);
  write_file(plain, "/data/b", 25);

  EXPECT_EQ(plane.dfs(0).namespace_digest(), plain.namespace_digest());
  EXPECT_EQ(plane.total_blocks(), plain.num_blocks());
  auto plain_files = plain.list_files();  // MiniDfs lists in map order
  std::sort(plain_files.begin(), plain_files.end());
  EXPECT_EQ(plane.list_files(), plain_files);
}

// Every shard shares the same DfsOptions (seed included), so a file ingested
// into a fresh plane gets the same placement no matter how many shards the
// plane has — the digest contract behind serve --meta-shards.
TEST(MetaPlane, PlacementIsIdenticalAtAnyShardCount) {
  dd::MetaPlane one(dd::ClusterTopology::flat(8), plane_options(1));
  dd::MetaPlane four(dd::ClusterTopology::flat(8), plane_options(4));

  const std::string path = "/data/movies.log";
  write_file(one, path, 60);
  write_file(four, path, 60);

  const auto& a = one.dfs_for(path);
  const auto& b = four.dfs_for(path);
  const auto blocks_a = a.blocks_of(path);
  const auto blocks_b = b.blocks_of(path);
  ASSERT_EQ(blocks_a.size(), blocks_b.size());
  for (std::size_t i = 0; i < blocks_a.size(); ++i) {
    EXPECT_EQ(a.replicas_snapshot(blocks_a[i]),
              b.replicas_snapshot(blocks_b[i]));
  }
  EXPECT_EQ(a.namespace_digest(), b.namespace_digest());
}

TEST(MetaPlane, RoutesFilesToOwningShardAndListsUnion) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(4));
  std::vector<std::string> files;
  for (std::uint32_t s = 0; s < 4; ++s) {
    files.push_back(path_on_shard(plane, s, "/data/f"));
    write_file(plane, files.back(), 10);
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(plane.exists(files[s]));
    EXPECT_TRUE(plane.dfs(s).exists(files[s]));
    EXPECT_EQ(plane.dfs(s).list_files().size(), 1u);
  }
  auto want = files;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(plane.list_files(), want);
  EXPECT_EQ(plane.total_blocks(),
            plane.dfs(0).num_blocks() + plane.dfs(1).num_blocks() +
                plane.dfs(2).num_blocks() + plane.dfs(3).num_blocks());
}

TEST(MetaPlane, ShardEpochsAreIsolated) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(4));
  const auto pa = path_on_shard(plane, 0, "/a/f");
  const auto pb = path_on_shard(plane, 1, "/b/f");
  write_file(plane, pa, 10);
  write_file(plane, pb, 10);
  const auto epochs = plane.shard_epochs();

  // Churn on shard 0 only: replica corruption bumps its epoch.
  auto& dfs0 = plane.dfs(0);
  const auto block = dfs0.blocks_of(pa).front();
  dfs0.corrupt_replica(block, dfs0.replicas_snapshot(block).front());

  EXPECT_GT(plane.shard_epoch(0), epochs[0]);
  EXPECT_EQ(plane.shard_epoch(1), epochs[1]);
  EXPECT_EQ(plane.shard_epoch(2), epochs[2]);
  EXPECT_EQ(plane.shard_epoch(3), epochs[3]);
}

TEST(MetaPlane, DurabilityRequiresAttachAndCrashIsTyped) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(2));
  EXPECT_FALSE(plane.journals_attached());
  EXPECT_THROW(plane.checkpoint_shard(0), std::logic_error);
  EXPECT_THROW(plane.crash_shard(0), std::logic_error);
  EXPECT_THROW((void)plane.journal_path(0), std::logic_error);
  EXPECT_THROW(plane.recover_shard(0), std::logic_error);  // not crashed

  TempDir tmp;
  plane.attach_journals(tmp.path());
  EXPECT_TRUE(plane.journals_attached());
  EXPECT_THROW(plane.attach_journals(tmp.path()), std::logic_error);
  EXPECT_THROW((void)plane.dfs(7), std::out_of_range);

  plane.crash_shard(1);
  EXPECT_TRUE(plane.shard_crashed(1));
  EXPECT_EQ(plane.crashed_shards(), 1u);
  try {
    (void)plane.dfs(1);
    FAIL() << "expected ShardUnavailableError";
  } catch (const dd::ShardUnavailableError& e) {
    EXPECT_EQ(e.shard_id, 1u);
  }
  EXPECT_THROW((void)plane.namespace_digest(), dd::ShardUnavailableError);
  EXPECT_THROW(plane.checkpoint_shard(1), dd::ShardUnavailableError);
}

TEST(MetaPlane, KillOneShardOthersKeepServingThenRecover) {
  TempDir tmp;
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(4));

  std::vector<std::string> files;
  for (std::uint32_t s = 0; s < 4; ++s) {
    files.push_back(path_on_shard(plane, s, "/data/f"));
    write_file(plane, files[s], 20);
  }
  plane.attach_journals(tmp.path());

  // Post-checkpoint mutations on the victim: its recovery must replay a
  // journal suffix, not just reload the image.
  const std::uint32_t victim = 2;
  const auto late = path_on_shard(plane, victim, "/late/f");
  write_file(plane, late, 8);
  const auto want = plane.dfs(victim).namespace_digest();
  const auto epochs = plane.shard_epochs();

  plane.crash_shard(victim);

  // Every other shard keeps serving reads and mutations while it is down.
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (s == victim) continue;
    EXPECT_TRUE(plane.dfs(s).exists(files[s]));
    (void)plane.dfs(s).namespace_digest();
  }
  const auto extra = path_on_shard(plane, 1, "/during-outage/f");
  write_file(plane, extra, 5);
  EXPECT_TRUE(plane.exists(extra));
  EXPECT_THROW((void)plane.exists(files[victim]), dd::ShardUnavailableError);

  const auto info = plane.recover_shard(victim);
  EXPECT_GT(info.replayed_frames, 0u);
  EXPECT_FALSE(plane.shard_crashed(victim));
  EXPECT_EQ(plane.dfs(victim).namespace_digest(), want);
  EXPECT_TRUE(plane.exists(late));
  // Recovery re-attached a fresh journal: later mutations stay durable.
  const auto post = path_on_shard(plane, victim, "/after-recovery/f");
  write_file(plane, post, 5);
  plane.crash_shard(victim);
  (void)plane.recover_shard(victim);
  EXPECT_TRUE(plane.exists(post));
  // Epochs of untouched shards did not move across the victim's outage.
  EXPECT_EQ(plane.shard_epoch(0), epochs[0]);
  EXPECT_EQ(plane.shard_epoch(3), epochs[3]);

  const auto report = dd::fsck(plane);
  EXPECT_TRUE(report.healthy());
  ASSERT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(report.combined.total_blocks, plane.total_blocks());
}

TEST(MetaPlane, PlaneFsckAggregatesAcrossShards) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(6), plane_options(3));
  for (std::uint32_t s = 0; s < 3; ++s) {
    write_file(plane, path_on_shard(plane, s, "/d/f"), 15);
  }
  const auto clean = dd::fsck(plane);
  EXPECT_TRUE(clean.healthy());
  EXPECT_EQ(clean.combined.total_blocks, plane.total_blocks());
  EXPECT_EQ(clean.combined.missing_blocks, 0u);

  // Sum of per-shard block counts must equal the combined count.
  std::uint64_t sum = 0;
  for (const auto& r : clean.shards) sum += r.total_blocks;
  EXPECT_EQ(sum, clean.combined.total_blocks);
}

// ---------------------------------------------------------------------------
// ClientMetaCache

TEST(ClientMetaCache, LeaseServesWithoutShardContact) {
  TempDir tmp;
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(2));
  const auto path = path_on_shard(plane, 1, "/data/f");
  write_file(plane, path, 12);
  plane.attach_journals(tmp.path());

  dd::ClientMetaCache cache(plane, {.lease_ticks = 16});
  const auto blocks = cache.blocks_of(path);  // cold miss
  EXPECT_EQ(cache.stats().refetches, 1u);
  ASSERT_FALSE(blocks.empty());

  // Within the lease the cache must not touch the plane at all — the owning
  // shard being CRASHED proves it (any contact would throw).
  plane.crash_shard(1);
  cache.tick(10);
  EXPECT_EQ(cache.blocks_of(path), blocks);
  EXPECT_FALSE(cache.replicas(path, blocks.front()).empty());
  EXPECT_GE(cache.stats().lease_hits, 2u);
  EXPECT_EQ(cache.stats().refetches, 1u);
  (void)plane.recover_shard(1);
}

TEST(ClientMetaCache, ExpiryRenewsOnUnchangedEpochRefetchesOnChurn) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(2));
  const auto path = path_on_shard(plane, 0, "/data/f");
  write_file(plane, path, 12);

  dd::ClientMetaCache cache(plane, {.lease_ticks = 4});
  const auto blocks = cache.blocks_of(path);
  ASSERT_FALSE(blocks.empty());
  const auto before = cache.replicas(path, blocks.front());

  // Expired lease, untouched shard: one cheap renewal, no refetch.
  cache.tick(5);
  (void)cache.blocks_of(path);
  EXPECT_EQ(cache.stats().renewals, 1u);
  EXPECT_EQ(cache.stats().refetches, 1u);

  // Replica churn on the owning shard, lease expired again: refetch picks up
  // the new placement.
  auto& dfs = plane.dfs(0);
  dd::NodeId target = 0;
  while (std::find(before.begin(), before.end(), target) != before.end()) {
    ++target;
  }
  dfs.move_replica(blocks.front(), before.front(), target);
  cache.tick(5);
  const auto after = cache.replicas(path, blocks.front());
  EXPECT_EQ(cache.stats().refetches, 2u);
  EXPECT_NE(std::find(after.begin(), after.end(), target), after.end());
  EXPECT_EQ(std::find(after.begin(), after.end(), before.front()), after.end());
}

TEST(ClientMetaCache, ChurnOnAnotherShardNeverInvalidates) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(2));
  const auto mine = path_on_shard(plane, 0, "/data/f");
  const auto theirs = path_on_shard(plane, 1, "/data/f");
  write_file(plane, mine, 12);
  write_file(plane, theirs, 12);

  dd::ClientMetaCache cache(plane, {.lease_ticks = 4});
  (void)cache.blocks_of(mine);

  // Heavy churn on shard 1 while shard 0 is untouched.
  auto& other = plane.dfs(1);
  const auto b = other.blocks_of(theirs).front();
  other.corrupt_replica(b, other.replicas_snapshot(b).front());

  cache.tick(5);  // expired: revalidates against shard 0's epoch only
  (void)cache.blocks_of(mine);
  EXPECT_EQ(cache.stats().renewals, 1u);
  EXPECT_EQ(cache.stats().refetches, 1u);
}

TEST(ClientMetaCache, ExplicitInvalidationForcesRefetch) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(1));
  write_file(plane, "/data/f", 12);
  dd::ClientMetaCache cache(plane, {.lease_ticks = 100});
  (void)cache.blocks_of("/data/f");
  EXPECT_EQ(cache.entries(), 1u);

  cache.invalidate("/data/f");
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.entries(), 0u);
  (void)cache.blocks_of("/data/f");  // mid-lease, but the entry is gone
  EXPECT_EQ(cache.stats().refetches, 2u);

  cache.invalidate("/data/f");
  cache.invalidate("/no/such/entry");  // no-op
  EXPECT_EQ(cache.stats().invalidations, 2u);
  cache.invalidate_all();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ClientMetaCache, ZeroLeaseRevalidatesEveryAccess) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(1));
  write_file(plane, "/data/f", 12);
  dd::ClientMetaCache cache(plane, {.lease_ticks = 0});
  (void)cache.blocks_of("/data/f");
  (void)cache.blocks_of("/data/f");
  (void)cache.blocks_of("/data/f");
  EXPECT_EQ(cache.stats().refetches, 1u);
  EXPECT_EQ(cache.stats().renewals, 2u);
  EXPECT_EQ(cache.stats().lease_hits, 0u);
}

TEST(ClientMetaCache, UnknownBlockRefetchesOnceThenThrows) {
  dd::MetaPlane plane(dd::ClusterTopology::flat(8), plane_options(1));
  write_file(plane, "/data/f", 12);
  dd::ClientMetaCache cache(plane, {.lease_ticks = 100});
  const auto blocks = cache.blocks_of("/data/f");
  ASSERT_FALSE(blocks.empty());
  const dd::BlockId bogus = blocks.back() + 1000;
  EXPECT_THROW((void)cache.replicas("/data/f", bogus), std::invalid_argument);
  EXPECT_THROW((void)cache.blocks_of("/no/such/file"), std::out_of_range);
}
