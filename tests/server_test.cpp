// datanetd coverage: wire-protocol round-trips and corruption handling,
// multi-tenant admission control with typed rejections, deficit-round-robin
// fairness (flooder vs trickler, weighted shares, deterministic dispatch
// order), DatasetCache epoch invalidation (hit / replica-churn revalidation
// / growth delta-apply), and the loopback end-to-end paths: served digests
// matching in-process golden runs, bad-request handling, admission
// rejections over the wire, graceful shutdown with drain, and queries
// racing live replica churn (the zero-copy pinned-read path under a
// concurrent mutator — run under ASan by tools/asan_tests.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "datanet/experiment.hpp"
#include "elasticmap/elastic_map.hpp"
#include "server/client.hpp"
#include "server/dataset_cache.hpp"
#include "server/dispatcher.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket_io.hpp"

namespace dc = datanet::core;
namespace dfs = datanet::dfs;
namespace srv = datanet::server;

namespace {

// Small-but-real server shape shared by the end-to-end tests. 16 nodes and
// 32 blocks keep a full query around a millisecond.
srv::ServerOptions small_server() {
  srv::ServerOptions opts;
  opts.cfg.num_nodes = 16;
  opts.cfg.block_size = 64 * 1024;
  opts.cfg.seed = 42;
  opts.dataset_blocks = 32;
  opts.workers = 2;
  return opts;
}

srv::QueryRequest query_for(const std::string& tenant, const std::string& key,
                            const std::string& sched = "datanet") {
  srv::QueryRequest q;
  q.tenant = tenant;
  q.key = key;
  q.scheduler = sched;
  return q;
}

}  // namespace

// ---- protocol ----

TEST(ServerProtocol, QueryRoundTrip) {
  srv::QueryRequest q;
  q.tenant = "alice";
  q.key = "movie_00042";
  q.scheduler = "locality";
  q.use_datanet_meta = false;
  const std::string payload = srv::encode_query(q);
  EXPECT_EQ(srv::peek_type(payload), srv::MsgType::kQuery);
  const srv::QueryRequest back = srv::decode_query(payload);
  EXPECT_EQ(back.tenant, q.tenant);
  EXPECT_EQ(back.key, q.key);
  EXPECT_EQ(back.scheduler, q.scheduler);
  EXPECT_EQ(back.use_datanet_meta, q.use_datanet_meta);
}

TEST(ServerProtocol, ReplyAndRejectionRoundTrip) {
  srv::QueryReply r;
  r.digest = 0x1234567890abcdefull;
  r.matched_bytes = 77;
  r.blocks_scanned = 13;
  r.service_micros = 999;
  r.queue_micros = 5;
  r.degraded = true;
  r.staleness_micros = 123'456;
  const srv::QueryReply back = srv::decode_query_ok(srv::encode_query_ok(r));
  EXPECT_EQ(back.digest, r.digest);
  EXPECT_EQ(back.matched_bytes, r.matched_bytes);
  EXPECT_EQ(back.blocks_scanned, r.blocks_scanned);
  EXPECT_EQ(back.service_micros, r.service_micros);
  EXPECT_EQ(back.queue_micros, r.queue_micros);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.staleness_micros, 123'456u);

  const srv::Rejection rej = srv::decode_rejected(srv::encode_rejected(
      {srv::RejectReason::kQueueFull, "tenant queue is full"}));
  EXPECT_EQ(rej.reason, srv::RejectReason::kQueueFull);
  EXPECT_EQ(rej.detail, "tenant queue is full");

  EXPECT_EQ(srv::decode_error(srv::encode_error("boom")), "boom");
  EXPECT_EQ(srv::peek_type(srv::encode_shutdown()), srv::MsgType::kShutdown);
}

TEST(ServerProtocol, FrameValidationCatchesCorruption) {
  const std::string payload = srv::encode_query(query_for("t", "k"));
  std::string framed = srv::frame(payload);
  ASSERT_GE(framed.size(), srv::kFrameHeaderBytes);

  // Clean frame parses.
  const srv::FrameHeader h = srv::decode_frame_header(
      std::string_view(framed).substr(0, srv::kFrameHeaderBytes));
  EXPECT_EQ(h.payload_len, payload.size());
  srv::check_frame_payload(
      h, std::string_view(framed).substr(srv::kFrameHeaderBytes));

  // Bad magic.
  std::string bad = framed;
  bad[0] = static_cast<char>(bad[0] ^ 0x5a);
  EXPECT_THROW(
      (void)srv::decode_frame_header(
          std::string_view(bad).substr(0, srv::kFrameHeaderBytes)),
      srv::ProtocolError);

  // Flipped payload byte fails the CRC.
  bad = framed;
  bad[srv::kFrameHeaderBytes + 2] =
      static_cast<char>(bad[srv::kFrameHeaderBytes + 2] ^ 1);
  EXPECT_THROW(
      srv::check_frame_payload(
          h, std::string_view(bad).substr(srv::kFrameHeaderBytes)),
      srv::ProtocolError);

  // Truncated payload.
  EXPECT_THROW(
      srv::check_frame_payload(
          h, std::string_view(framed).substr(srv::kFrameHeaderBytes + 1)),
      srv::ProtocolError);

  // Absurd length field.
  std::string huge = framed;
  huge[4] = '\xff';
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\x7f';
  EXPECT_THROW(
      (void)srv::decode_frame_header(
          std::string_view(huge).substr(0, srv::kFrameHeaderBytes)),
      srv::ProtocolError);

  // Short header, empty payload, truncated message body, trailing bytes.
  EXPECT_THROW((void)srv::decode_frame_header("tiny"), srv::ProtocolError);
  EXPECT_THROW((void)srv::peek_type(""), srv::ProtocolError);
  EXPECT_THROW((void)srv::decode_query(payload.substr(0, 4)),
               srv::ProtocolError);
  EXPECT_THROW((void)srv::decode_query(payload + "x"), srv::ProtocolError);
  // Wrong type for the decoder.
  EXPECT_THROW((void)srv::decode_query_ok(payload), srv::ProtocolError);
}

// ---- dispatcher ----

TEST(FairDispatcher, TypedRejectionsAtTheBounds) {
  srv::FairDispatcher d;
  d.register_tenant("bounded", {.max_queue = 3, .max_inflight = 2});
  d.register_tenant("queueless", {.max_queue = 0, .max_inflight = 2});

  // Bounded queue: 3 accepted, 4th typed kQueueFull.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(d.submit("bounded", query_for("bounded", "k")),
              srv::SubmitStatus::kAccepted);
  }
  EXPECT_EQ(d.submit("bounded", query_for("bounded", "k")),
            srv::SubmitStatus::kQueueFull);

  // Queueless tenant: admission is in-flight availability; rejections are
  // typed kTooManyInflight, never kQueueFull.
  EXPECT_EQ(d.submit("queueless", query_for("queueless", "k")),
            srv::SubmitStatus::kAccepted);
  EXPECT_EQ(d.submit("queueless", query_for("queueless", "k")),
            srv::SubmitStatus::kAccepted);
  EXPECT_EQ(d.submit("queueless", query_for("queueless", "k")),
            srv::SubmitStatus::kTooManyInflight);

  const srv::TenantStats bounded = d.tenant_stats("bounded");
  EXPECT_EQ(bounded.accepted, 3u);
  EXPECT_EQ(bounded.rejected_queue_full, 1u);
  EXPECT_EQ(bounded.rejected_inflight, 0u);
  const srv::TenantStats queueless = d.tenant_stats("queueless");
  EXPECT_EQ(queueless.accepted, 2u);
  EXPECT_EQ(queueless.rejected_inflight, 1u);
  EXPECT_EQ(queueless.rejected_queue_full, 0u);

  // Freeing a queueless slot re-admits. DRR may hand us bounded jobs first;
  // drain until a queueless job is in flight, then complete it.
  std::optional<srv::DispatchJob> job;
  do {
    job = d.try_next();
    ASSERT_TRUE(job.has_value());
    if (job->tenant != "queueless") d.complete(job->tenant);
  } while (job->tenant != "queueless");
  d.complete("queueless");
  EXPECT_EQ(d.submit("queueless", query_for("queueless", "k")),
            srv::SubmitStatus::kAccepted);
}

TEST(FairDispatcher, TricklerIsServedWithinOneRotationOfAFlooder) {
  srv::FairDispatcher d;
  d.register_tenant("flooder", {.max_queue = 100, .max_inflight = 100});
  d.register_tenant("trickler", {.max_queue = 4, .max_inflight = 4});
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(d.submit("flooder", query_for("flooder", "k")),
              srv::SubmitStatus::kAccepted);
  }
  // The trickler submits ONE job into a 50-deep backlog; DRR must dispatch
  // it within one rotation (<= #tenants dispatch ticks), not after the
  // backlog drains. This is the daemon's bounded-latency guarantee for
  // light tenants — the dispatch-tick analogue of the p99 bound.
  ASSERT_EQ(d.submit("trickler", query_for("trickler", "k")),
            srv::SubmitStatus::kAccepted);
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    auto job = d.try_next();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->tenant);
  }
  EXPECT_NE(std::find(order.begin(), order.end(), "trickler"), order.end())
      << "trickler waited more than one DRR rotation behind the flooder";
}

TEST(FairDispatcher, InflightCapGatesDispatchUntilCompletion) {
  srv::FairDispatcher d;
  d.register_tenant("t", {.max_queue = 10, .max_inflight = 2});
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(d.submit("t", query_for("t", "k")), srv::SubmitStatus::kAccepted);
  }
  EXPECT_TRUE(d.try_next().has_value());
  EXPECT_TRUE(d.try_next().has_value());
  // Cap reached: queued work exists but nothing is eligible.
  EXPECT_FALSE(d.try_next().has_value());
  EXPECT_EQ(d.queued(), 3u);
  d.complete("t");
  EXPECT_TRUE(d.try_next().has_value());
  EXPECT_FALSE(d.try_next().has_value());
}

TEST(FairDispatcher, WeightedSharesAndDeterministicOrder) {
  // heavy (weight 2) gets two dispatches per rotation, light gets one, and
  // the whole order is a pure function of the submission sequence.
  auto run = [] {
    srv::FairDispatcher d;
    d.register_tenant("heavy", {.max_queue = 50, .max_inflight = 50,
                                .weight = 2});
    d.register_tenant("light", {.max_queue = 50, .max_inflight = 50,
                                .weight = 1});
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(d.submit("heavy", query_for("heavy", "k")),
                srv::SubmitStatus::kAccepted);
      EXPECT_EQ(d.submit("light", query_for("light", "k")),
                srv::SubmitStatus::kAccepted);
    }
    std::vector<std::string> order;
    std::vector<std::uint64_t> tickets;
    while (auto job = d.try_next()) {
      order.push_back(job->tenant);
      tickets.push_back(job->ticket);
    }
    return std::pair(order, tickets);
  };
  const auto [order, tickets] = run();
  ASSERT_EQ(order.size(), 24u);
  // First 18 dispatches: heavy,heavy,light repeating (the 2:1 share).
  // heavy's queue then runs dry and light drains alone.
  for (std::size_t i = 0; i < 18; i += 3) {
    EXPECT_EQ(order[i], "heavy") << i;
    EXPECT_EQ(order[i + 1], "heavy") << i;
    EXPECT_EQ(order[i + 2], "light") << i;
  }
  for (std::size_t i = 18; i < 24; ++i) EXPECT_EQ(order[i], "light") << i;
  // Seeded-schedule determinism: an identical submission sequence yields an
  // identical dispatch sequence, ticket for ticket.
  const auto [order2, tickets2] = run();
  EXPECT_EQ(order, order2);
  EXPECT_EQ(tickets, tickets2);
}

TEST(FairDispatcher, StopDrainsAcceptedWorkThenReleasesWorkers) {
  srv::FairDispatcher d;
  ASSERT_EQ(d.submit("t", query_for("t", "k")), srv::SubmitStatus::kAccepted);
  ASSERT_EQ(d.submit("t", query_for("t", "k")), srv::SubmitStatus::kAccepted);
  d.stop();
  EXPECT_EQ(d.submit("t", query_for("t", "k")), srv::SubmitStatus::kStopped);
  // next() hands out the remaining accepted jobs before returning nullopt.
  EXPECT_TRUE(d.next().has_value());
  EXPECT_TRUE(d.next().has_value());
  EXPECT_FALSE(d.next().has_value());
}

// ---- dataset cache ----

TEST(DatasetCache, HitRevalidateAndRebuild) {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  const dc::StoredDataset ds = dc::make_movie_dataset(cfg, 16);
  srv::DatasetCache cache;

  const auto first = cache.get(*ds.dfs, ds.path);
  const auto again = cache.get(*ds.dfs, ds.path);
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Replica churn (healing/balancing): epoch moves, block count does not —
  // the ElasticMap is still exact, so the entry is revalidated, not rebuilt.
  const dfs::BlockId b = ds.dfs->blocks_of(ds.path).front();
  const auto hosts = ds.dfs->replicas_snapshot(b);
  dfs::NodeId target = 0;
  while (std::find(hosts.begin(), hosts.end(), target) != hosts.end()) {
    ++target;
  }
  ds.dfs->move_replica(b, hosts.front(), target);
  const auto after_churn = cache.get(*ds.dfs, ds.path);
  EXPECT_EQ(after_churn.get(), first.get());
  EXPECT_EQ(cache.stats().revalidations, 1u);
  EXPECT_EQ(cache.stats().rebuilds, 1u);

  // A sibling file appearing bumps the epoch but not this path's block
  // count: still the same cached entry, revalidated not rebuilt.
  {
    auto writer = ds.dfs->create(ds.path + ".sibling");
    writer.append("100\tprobe\tpayload");
    writer.close();
  }
  EXPECT_EQ(cache.get(*ds.dfs, ds.path).get(), first.get());
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_EQ(cache.stats().revalidations, 2u);
}

TEST(DatasetCache, GrowthUnderTheSamePathDeltaApplies) {
  dfs::MiniDfs mini(dfs::ClusterTopology::flat(4),
                    {.block_size = 1024, .replication = 2, .seed = 7});
  srv::DatasetCache cache;
  auto writer = mini.create("/data/log");
  const std::string payload(400, 'x');
  // Seal a few blocks, keep the writer open so the file can still grow.
  for (int i = 0; i < 8; ++i) writer.append("100\tk\t" + payload);
  const std::size_t before = mini.blocks_of("/data/log").size();
  ASSERT_GT(before, 0u);
  const auto small = cache.get(mini, "/data/log");
  EXPECT_EQ(cache.stats().rebuilds, 1u);

  for (int i = 0; i < 8; ++i) writer.append("100\tk\t" + payload);
  writer.close();
  ASSERT_GT(mini.blocks_of("/data/log").size(), before);
  // Streaming growth: the cache extends the prior map over the appended
  // blocks instead of rescanning the whole file — a NEW bundle (immutable
  // snapshots for in-flight queries), but no second full rebuild.
  const auto big = cache.get(mini, "/data/log");
  EXPECT_NE(big.get(), small.get());
  EXPECT_EQ(cache.stats().rebuilds, 1u);
  EXPECT_EQ(cache.stats().delta_applies, 1u);
  EXPECT_EQ(big->meta().num_blocks(), mini.blocks_of("/data/log").size());
  // The delta-applied map answers exactly like a from-scratch build.
  const auto fresh =
      datanet::elasticmap::ElasticMapArray::build(mini, "/data/log", {});
  const auto id = datanet::workload::subdataset_id("100");
  EXPECT_EQ(big->meta().estimate_total_size(id),
            fresh.estimate_total_size(id));
}

// ---- end to end over loopback ----

TEST(ServerEndToEnd, ServedDigestsMatchInProcessGoldenRuns) {
  const srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  srv::Client client(server.port());

  const auto& hot = server.dataset().hot_keys;
  ASSERT_GE(hot.size(), 2u);
  for (const std::string& sched : {"datanet", "locality"}) {
    for (std::size_t k = 0; k < 2; ++k) {
      srv::QueryRequest q = query_for("golden", hot[k], sched);
      const srv::ClientResult served = client.query(q);
      ASSERT_TRUE(served.ok()) << served.error;
      const srv::QueryOutcome golden = srv::local_query(opts, q);
      ASSERT_TRUE(golden.ok) << golden.error;
      EXPECT_EQ(served.reply.digest, golden.reply.digest)
          << sched << " " << hot[k];
      EXPECT_EQ(served.reply.matched_bytes, golden.reply.matched_bytes);
      EXPECT_EQ(served.reply.blocks_scanned, golden.reply.blocks_scanned);
      EXPECT_GT(served.reply.matched_bytes, 0u);
    }
  }
  // DataNet pruning scans fewer blocks than the content-blind baseline.
  srv::QueryRequest pruned = query_for("golden", hot[0]);
  srv::QueryRequest blind = query_for("golden", hot[0]);
  blind.use_datanet_meta = false;
  const auto with_meta = client.query(pruned);
  const auto without_meta = client.query(blind);
  ASSERT_TRUE(with_meta.ok() && without_meta.ok());
  EXPECT_LT(with_meta.reply.blocks_scanned, without_meta.reply.blocks_scanned);
  EXPECT_EQ(with_meta.reply.matched_bytes, without_meta.reply.matched_bytes);
  server.stop();
}

TEST(ServerEndToEnd, BadRequestsGetTypedRejections) {
  srv::Server server(small_server());
  server.start();
  srv::Client client(server.port());

  srv::QueryRequest no_key = query_for("t", "");
  auto result = client.query(no_key);
  ASSERT_EQ(result.status, srv::ClientResult::Status::kRejected);
  EXPECT_EQ(result.rejection.reason, srv::RejectReason::kBadRequest);

  srv::QueryRequest bad_sched = query_for("t", "movie_00000", "magic");
  result = client.query(bad_sched);
  ASSERT_EQ(result.status, srv::ClientResult::Status::kRejected);
  EXPECT_EQ(result.rejection.reason, srv::RejectReason::kBadRequest);

  // A query on a healthy connection still works after rejections.
  result = client.query(query_for("t", server.dataset().hot_keys[0]));
  EXPECT_TRUE(result.ok());
  server.stop();
}

TEST(ServerEndToEnd, CorruptFrameIsRejectedNotCrashed) {
  srv::Server server(small_server());
  server.start();
  {
    // Hand-roll a frame with a flipped payload byte: the server must answer
    // kRejected(bad_request) and drop the connection, not die.
    srv::Fd fd = srv::connect_loopback(server.port());
    std::string framed =
        srv::frame(srv::encode_query(query_for("t", "movie_00000")));
    framed[framed.size() - 1] = static_cast<char>(framed.back() ^ 1);
    srv::write_all(fd, framed);
    const auto header = srv::read_exact(fd, srv::kFrameHeaderBytes);
    ASSERT_TRUE(header.has_value());
    const srv::FrameHeader h = srv::decode_frame_header(*header);
    const auto payload = srv::read_exact(fd, h.payload_len);
    ASSERT_TRUE(payload.has_value());
    srv::check_frame_payload(h, *payload);
    const srv::Rejection rej = srv::decode_rejected(*payload);
    EXPECT_EQ(rej.reason, srv::RejectReason::kBadRequest);
    // Connection is dropped after a protocol error.
    const auto eof = srv::read_exact(fd, 1);
    EXPECT_FALSE(eof.has_value());
  }
  // The server still serves fresh connections.
  srv::Client client(server.port());
  EXPECT_TRUE(client.query(query_for("t", server.dataset().hot_keys[0])).ok());
  server.stop();
}

TEST(ServerEndToEnd, QueuelessTenantSeesTypedInflightRejection) {
  srv::ServerOptions opts = small_server();
  opts.default_limits = {.max_queue = 0, .max_inflight = 0};
  srv::Server server(opts);
  server.start();
  srv::Client client(server.port());
  const auto result = client.query(query_for("t", "movie_00000"));
  ASSERT_EQ(result.status, srv::ClientResult::Status::kRejected);
  EXPECT_EQ(result.rejection.reason, srv::RejectReason::kTooManyInflight);
  server.stop();
}

TEST(ServerEndToEnd, SkewedTenantsFlooderIsBoundedTricklerAlwaysServed) {
  srv::ServerOptions opts = small_server();
  opts.workers = 1;  // serialize execution so backpressure actually builds
  opts.default_limits = {.max_queue = 1, .max_inflight = 1};
  srv::Server server(opts);
  server.dispatcher().register_tenant("trickler",
                                      {.max_queue = 8, .max_inflight = 4});
  server.start();
  const std::string key = server.dataset().hot_keys[0];

  std::atomic<std::uint64_t> flooder_ok{0};
  std::atomic<std::uint64_t> flooder_rejected{0};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 4; ++t) {
    flooders.emplace_back([&, t] {
      srv::Client c(server.port());
      for (int i = 0; i < 40; ++i) {
        const auto r = c.query(query_for("flooder", key));
        if (r.ok()) {
          ++flooder_ok;
        } else {
          ASSERT_EQ(r.status, srv::ClientResult::Status::kRejected);
          ASSERT_EQ(r.rejection.reason, srv::RejectReason::kQueueFull)
              << "flooder rejections must be the typed queue-full kind";
          ++flooder_rejected;
        }
      }
    });
  }
  // The trickler runs its queries while the flood is in progress; every one
  // must be served (its private queue is never full) with a bounded wait.
  std::uint64_t trickler_served = 0;
  {
    srv::Client c(server.port());
    for (int i = 0; i < 10; ++i) {
      const auto r = c.query(query_for("trickler", key));
      ASSERT_TRUE(r.ok()) << "trickler query " << i << " not served";
      ++trickler_served;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  for (auto& t : flooders) t.join();
  EXPECT_EQ(trickler_served, 10u);
  EXPECT_GT(flooder_ok.load(), 0u);
  // 4 synchronous flooder connections against capacity 2 (1 queued + 1
  // in flight): overflow arrivals are typed queue-full rejections.
  const srv::TenantStats fs = server.dispatcher().tenant_stats("flooder");
  EXPECT_EQ(fs.rejected_inflight, 0u);
  EXPECT_EQ(fs.accepted + fs.rejected_queue_full, fs.submitted);
  const srv::TenantStats ts = server.dispatcher().tenant_stats("trickler");
  EXPECT_EQ(ts.accepted, 10u);
  EXPECT_EQ(ts.rejected_queue_full + ts.rejected_inflight, 0u);
  server.stop();
}

TEST(ServerEndToEnd, QueriesStayCorrectWhileAMutatorChurnsReplicas) {
  // The zero-copy lifetime regression, end to end: workers serve pinned
  // reads while the single external mutator relocates and drop-and-heals
  // replicas under them. Every query must succeed with the
  // placement-invariant totals (matched bytes, scanned blocks); under ASan
  // this is the use-after-free probe for the PR 6 string_view hazard.
  const srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  const std::string key = server.dataset().hot_keys[0];
  const srv::QueryOutcome golden = srv::local_query(opts, query_for("t", key));
  ASSERT_TRUE(golden.ok);

  std::atomic<bool> done{false};
  std::thread mutator([&] {
    dfs::MiniDfs& mini = server.dfs();
    const auto blocks = mini.blocks_of(server.dataset().path);
    std::uint64_t step = 0;
    while (!done.load(std::memory_order_acquire)) {
      const dfs::BlockId b = blocks[step % blocks.size()];
      const auto hosts = mini.replicas_snapshot(b);
      dfs::NodeId target = 0;
      while (std::find(hosts.begin(), hosts.end(), target) != hosts.end()) {
        ++target;
      }
      if (step % 3 == 0) {
        // Drop-and-reheal churn: mark a copy corrupt, report it, NameNode
        // re-replicates (inline_repair default) — replica set mutates.
        mini.corrupt_replica(b, hosts.front());
        mini.report_corrupt_replica(b, hosts.front());
      } else {
        mini.move_replica(b, hosts.front(), target);
      }
      ++step;
    }
  });

  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> served{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      srv::Client c(server.port());
      for (int i = 0; i < 25; ++i) {
        const auto r = c.query(query_for("t", key));
        ASSERT_TRUE(r.ok()) << r.error;
        // Placement-sensitive fields (digest) legitimately change under
        // churn; the selection's content totals must not.
        EXPECT_EQ(r.reply.matched_bytes, golden.reply.matched_bytes);
        EXPECT_EQ(r.reply.blocks_scanned, golden.reply.blocks_scanned);
        ++served;
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_release);
  mutator.join();
  EXPECT_EQ(served.load(), 75u);
  EXPECT_GT(server.cache().stats().revalidations, 0u);
  server.stop();
}

TEST(ServerEndToEnd, ShutdownMessageDrainsAndStops) {
  srv::Server server(small_server());
  server.start();
  {
    srv::Client client(server.port());
    ASSERT_TRUE(
        client.query(query_for("t", server.dataset().hot_keys[0])).ok());
    client.shutdown_server();
  }
  server.wait();  // returns because the kShutdown frame requested stop
  server.stop();
  EXPECT_GE(server.queries_served(), 1u);
  // The listener is gone: new connections fail.
  EXPECT_THROW((void)srv::connect_loopback(server.port()), srv::SocketError);
}

// ---- stats / metering ----

TEST(ServerProtocol, StatsRoundTrip) {
  EXPECT_EQ(srv::peek_type(srv::encode_stats()), srv::MsgType::kStats);

  srv::ServerStats s;
  s.queries_served = 42;
  s.cache_hits = 40;
  s.cache_revalidations = 1;
  s.cache_rebuilds = 1;
  s.cache_delta_applies = 6;
  s.meta_shards = 4;
  srv::TenantMeter a;
  a.tenant = "alice";
  a.submitted = 30;
  a.accepted = 28;
  a.rejected_queue_full = 2;
  a.dispatched = 28;
  a.completed = 28;
  a.queue_wait_micros = 12345;
  srv::TenantMeter b;
  b.tenant = "bob";
  b.submitted = 14;
  b.accepted = 14;
  b.rejected_inflight = 0;
  b.dispatched = 14;
  b.completed = 13;
  s.tenants = {a, b};

  const auto decoded = srv::decode_stats_ok(srv::encode_stats_ok(s));
  EXPECT_EQ(decoded.queries_served, 42u);
  EXPECT_EQ(decoded.meta_shards, 4u);
  EXPECT_EQ(decoded.cache_hits, 40u);
  EXPECT_EQ(decoded.cache_delta_applies, 6u);
  ASSERT_EQ(decoded.tenants.size(), 2u);
  EXPECT_EQ(decoded.tenants[0].tenant, "alice");
  EXPECT_EQ(decoded.tenants[0].rejected_queue_full, 2u);
  EXPECT_EQ(decoded.tenants[0].queue_wait_micros, 12345u);
  EXPECT_EQ(decoded.tenants[1].tenant, "bob");
  EXPECT_EQ(decoded.tenants[1].completed, 13u);

  // Truncation and a hostile tenant count both fail typed.
  const auto payload = srv::encode_stats_ok(s);
  EXPECT_THROW(srv::decode_stats_ok(payload.substr(0, payload.size() - 3)),
               srv::ProtocolError);
  auto hostile = payload;
  hostile[62] = '\xff';  // inside the tenant-count word (offset 61..64)
  EXPECT_THROW(srv::decode_stats_ok(hostile), srv::ProtocolError);
}

TEST(ServerEndToEnd, StatsMeterTenantsAcrossShardedPlane) {
  srv::ServerOptions opts = small_server();
  opts.meta_shards = 4;
  srv::Server server(opts);
  server.start();
  EXPECT_EQ(server.plane().num_shards(), 4u);
  srv::Client client(server.port());

  const auto& hot = server.dataset().hot_keys;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.query(query_for("alice", hot[0])).ok());
  }
  ASSERT_TRUE(client.query(query_for("bob", hot[1])).ok());
  // Served digests stay golden at shard count 4 — sharding must not change
  // placement (the serve --meta-shards determinism contract).
  const srv::QueryRequest q = query_for("alice", hot[0]);
  const auto served = client.query(q);
  const auto golden = srv::local_query(opts, q);
  ASSERT_TRUE(served.ok() && golden.ok);
  EXPECT_EQ(served.reply.digest, golden.reply.digest);

  const srv::ServerStats stats = client.stats();
  EXPECT_EQ(stats.queries_served, 5u);
  EXPECT_EQ(stats.meta_shards, 4u);
  ASSERT_EQ(stats.tenants.size(), 2u);
  const auto* alice = &stats.tenants[0];
  const auto* bob = &stats.tenants[1];
  if (alice->tenant != "alice") std::swap(alice, bob);
  EXPECT_EQ(alice->tenant, "alice");
  EXPECT_EQ(alice->submitted, 4u);
  EXPECT_EQ(alice->accepted, 4u);
  EXPECT_EQ(alice->dispatched, 4u);
  EXPECT_EQ(alice->completed, 4u);
  EXPECT_EQ(bob->submitted, 1u);
  EXPECT_EQ(bob->completed, 1u);
  EXPECT_EQ(alice->rejected_queue_full + alice->rejected_inflight, 0u);

  // The stats message is read-only: it does not count as a served query.
  EXPECT_EQ(client.stats().queries_served, 5u);
  server.stop();
}

// ---- wire v2 back-compat (PR 9) ----

// A v1 peer's kQuery has no deadline suffix; a v2 decoder must accept it
// with the deadline defaulting off. A v1 payload is exactly a v2 payload
// with the 4-byte suffix stripped (append-only evolution).
TEST(ServerProtocolV2, QueryDecodesV1PayloadWithoutDeadline) {
  srv::QueryRequest q;
  q.tenant = "alice";
  q.key = "movie_00007";
  q.scheduler = "lpt";
  q.use_datanet_meta = false;
  q.deadline_ms = 250;
  const std::string v2 = srv::encode_query(q);

  const srv::QueryRequest back2 = srv::decode_query(v2);
  EXPECT_EQ(back2.deadline_ms, 250u);

  const std::string v1 = v2.substr(0, v2.size() - 4);
  const srv::QueryRequest back1 = srv::decode_query(v1);
  EXPECT_EQ(back1.tenant, q.tenant);
  EXPECT_EQ(back1.key, q.key);
  EXPECT_EQ(back1.scheduler, q.scheduler);
  EXPECT_EQ(back1.use_datanet_meta, q.use_datanet_meta);
  EXPECT_EQ(back1.deadline_ms, 0u);  // suffix absent -> no deadline

  // A TORN v2 suffix (1..3 bytes) is still a protocol error, not silently
  // accepted as v1.
  EXPECT_THROW(srv::decode_query(v2.substr(0, v2.size() - 2)),
               srv::ProtocolError);
}

TEST(ServerProtocolV2, QueryOkDecodesOlderPayloadsWithoutSuffixes) {
  srv::QueryReply r;
  r.digest = 42;
  r.matched_bytes = 7;
  r.blocks_scanned = 3;
  r.service_micros = 11;
  r.queue_micros = 5;
  r.degraded = true;
  r.staleness_micros = 9'000;
  const std::string v3 = srv::encode_query_ok(r);
  EXPECT_TRUE(srv::decode_query_ok(v3).degraded);
  EXPECT_EQ(srv::decode_query_ok(v3).staleness_micros, 9'000u);

  // v2 payload: degraded flag, no staleness word.
  const std::string v2 = v3.substr(0, v3.size() - 8);
  const srv::QueryReply back2 = srv::decode_query_ok(v2);
  EXPECT_TRUE(back2.degraded);
  EXPECT_EQ(back2.staleness_micros, 0u);  // suffix absent -> unknown age

  // v1 payload: neither suffix.
  const std::string v1 = v3.substr(0, v3.size() - 9);
  const srv::QueryReply back1 = srv::decode_query_ok(v1);
  EXPECT_EQ(back1.digest, 42u);
  EXPECT_EQ(back1.queue_micros, 5u);
  EXPECT_FALSE(back1.degraded);  // suffix absent -> not degraded

  // A TORN staleness word is a protocol error, not silently dropped.
  EXPECT_THROW(srv::decode_query_ok(v3.substr(0, v3.size() - 3)),
               srv::ProtocolError);
}

TEST(ServerProtocolV2, NewRejectReasonsRoundTrip) {
  for (const srv::RejectReason reason :
       {srv::RejectReason::kDeadlineExceeded, srv::RejectReason::kCircuitOpen,
        srv::RejectReason::kShardUnavailable}) {
    const auto back =
        srv::decode_rejected(srv::encode_rejected({reason, "detail"}));
    EXPECT_EQ(back.reason, reason);
    EXPECT_FALSE(srv::reject_reason_name(reason).empty());
  }
}

// ---- socket EOF semantics (PR 9 satellite) ----

namespace {

// A connected loopback pair: `a` is the connecting side, `b` the accepted
// side. Loopback connect completes via the backlog, so no threads needed.
struct SocketPair {
  srv::Fd listener;
  srv::Fd a;
  srv::Fd b;
  SocketPair() {
    auto [fd, port] = srv::listen_loopback(0);
    listener = std::move(fd);
    a = srv::connect_loopback(port);
    auto accepted = srv::accept_client(listener);
    EXPECT_TRUE(accepted.has_value());
    b = std::move(*accepted);
  }
};

}  // namespace

TEST(ServerSocket, ReadExactCleanEofAtMessageBoundary) {
  SocketPair p;
  srv::write_all(p.a, "hello");
  p.a.reset();  // FIN after a complete message
  const auto got = srv::read_exact(p.b, 5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
  // EOF with zero bytes read is a CLEAN end of stream: nullopt, not a throw.
  EXPECT_FALSE(srv::read_exact(p.b, 5).has_value());
}

TEST(ServerSocket, ReadExactMidMessageEofThrows) {
  SocketPair p;
  srv::write_all(p.a, "abc");
  p.a.reset();  // FIN mid-message
  // 3 of 5 bytes then EOF: the message is torn — typed error, never a
  // truncated success.
  EXPECT_THROW((void)srv::read_exact(p.b, 5), srv::SocketError);
}

TEST(ServerSocket, ReadExactIdleTimeoutThrowsTyped) {
  SocketPair p;
  // No bytes ever arrive: the idle deadline must surface as the typed
  // subclass so retry policy can distinguish slow from garbled.
  EXPECT_THROW((void)srv::read_exact(p.b, 1, 50), srv::SocketTimeoutError);
  // The connection is still usable afterwards — a timeout is a deadline,
  // not a protocol desync.
  srv::write_all(p.a, "x");
  const auto got = srv::read_exact(p.b, 1, 50);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "x");
}

TEST(ServerSocket, PeekTypeOnEmptyPayloadThrows) {
  EXPECT_THROW((void)srv::peek_type(std::string_view{}), srv::ProtocolError);
}
