// Tests for the workload substrate: record codec, text generation, the three
// log generators (content-clustering properties included), ingestion, and
// the ground-truth oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "workload/dataset.hpp"
#include "workload/github_gen.hpp"
#include "workload/movie_gen.hpp"
#include "workload/record.hpp"
#include "workload/text_gen.hpp"
#include "workload/worldcup_gen.hpp"

namespace dw = datanet::workload;

// ---- record codec ----

TEST(Record, EncodeDecodeRoundTrip) {
  const dw::Record r{12345, "movie_00007", "rating=8 great film"};
  const auto line = dw::encode_record(r);
  const auto rv = dw::decode_record(line);
  ASSERT_TRUE(rv);
  EXPECT_EQ(rv->timestamp, 12345u);
  EXPECT_EQ(rv->key, "movie_00007");
  EXPECT_EQ(rv->payload, "rating=8 great film");
}

TEST(Record, EncodedSizeMatchesLineLength) {
  const dw::Record r{987654321, "k", "some payload"};
  const auto line = dw::encode_record(r);
  const auto rv = dw::decode_record(line);
  ASSERT_TRUE(rv);
  EXPECT_EQ(rv->encoded_size(), line.size() + 1);  // +1 for the newline
}

TEST(Record, EncodedSizeSingleDigitTimestamp) {
  const dw::Record r{0, "ab", "c"};
  const auto rv = dw::decode_record(dw::encode_record(r));
  ASSERT_TRUE(rv);
  EXPECT_EQ(rv->encoded_size(), 1u + 1 + 2 + 1 + 1 + 1);
}

TEST(Record, DecodeRejectsMalformed) {
  EXPECT_FALSE(dw::decode_record(""));
  EXPECT_FALSE(dw::decode_record("no tabs here"));
  EXPECT_FALSE(dw::decode_record("onlyone\tfield"));
  EXPECT_FALSE(dw::decode_record("notanumber\tkey\tpayload"));
  EXPECT_FALSE(dw::decode_record("123\t\tempty key"));
}

TEST(Record, DecodeAllowsEmptyPayloadAndTabsInPayload) {
  const auto rv = dw::decode_record("5\tkey\t");
  ASSERT_TRUE(rv);
  EXPECT_EQ(rv->payload, "");
  const auto rv2 = dw::decode_record("5\tkey\ta\tb");
  ASSERT_TRUE(rv2);
  EXPECT_EQ(rv2->payload, "a\tb");
}

TEST(Record, SubdatasetIdStableAndDistinct) {
  EXPECT_EQ(dw::subdataset_id("movie_1"), dw::subdataset_id("movie_1"));
  EXPECT_NE(dw::subdataset_id("movie_1"), dw::subdataset_id("movie_2"));
}

TEST(Record, ForEachRecordSkipsBadLines) {
  const std::string block = "1\ta\tx\ngarbage\n2\tb\ty\n\n3\tc\tz\n";
  std::vector<std::string> keys;
  const auto skipped = dw::for_each_record(block, [&](const dw::RecordView& rv) {
    keys.emplace_back(rv.key);
  });
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[1], "b");
}

TEST(Record, ForEachRecordHandlesMissingTrailingNewline) {
  std::uint64_t count = 0;
  dw::for_each_record("1\ta\tx\n2\tb\ty", [&](const dw::RecordView&) { ++count; });
  EXPECT_EQ(count, 2u);
}

// ---- text generator ----

TEST(TextGen, SentenceWordCounts) {
  const dw::TextGenerator g(500, 1.0);
  datanet::common::Rng rng(3);
  const auto s = g.sentence(rng, 10);
  EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 9);
}

TEST(TextGen, BoundedSentenceLength) {
  const dw::TextGenerator g(500, 1.0);
  datanet::common::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto s = g.sentence(rng, 3, 7);
    const auto words = std::count(s.begin(), s.end(), ' ') + 1;
    EXPECT_GE(words, 3);
    EXPECT_LE(words, 7);
  }
}

TEST(TextGen, VocabularyDistinct) {
  const dw::TextGenerator g(1000, 1.0);
  std::set<std::string> s(g.vocabulary().begin(), g.vocabulary().end());
  // make_word may rarely collide; allow a handful.
  EXPECT_GT(s.size(), 990u);
}

TEST(TextGen, ZipfSkewInText) {
  const dw::TextGenerator g(200, 1.2);
  datanet::common::Rng rng(5);
  std::unordered_map<std::string, int> counts;
  for (int i = 0; i < 500; ++i) {
    for (const auto& part : {g.sentence(rng, 20)}) {
      std::size_t start = 0;
      while (start < part.size()) {
        auto end = part.find(' ', start);
        if (end == std::string::npos) end = part.size();
        ++counts[part.substr(start, end - start)];
        start = end + 1;
      }
    }
  }
  // The most frequent word should dominate: Zipf head heavier than average.
  int max_count = 0;
  for (const auto& [w, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 10000 / 200 * 5);
}

TEST(TextGen, RejectsBadArgs) {
  EXPECT_THROW(dw::TextGenerator(0, 1.0), std::invalid_argument);
  const dw::TextGenerator g(10, 1.0);
  datanet::common::Rng rng(1);
  EXPECT_THROW(g.sentence(rng, 5, 3), std::invalid_argument);
}

// ---- movie generator ----

TEST(MovieGen, GeneratesRequestedCountSorted) {
  dw::MovieGenOptions o;
  o.num_movies = 50;
  o.num_records = 5000;
  const dw::MovieLogGenerator gen(o);
  const auto recs = gen.generate();
  EXPECT_EQ(recs.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end(),
                             [](const dw::Record& a, const dw::Record& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

TEST(MovieGen, TimestampsWithinHorizon) {
  dw::MovieGenOptions o;
  o.num_movies = 20;
  o.num_records = 2000;
  o.horizon_seconds = 10000;
  const dw::MovieLogGenerator gen(o);
  for (const auto& r : gen.generate()) EXPECT_LT(r.timestamp, 10000u);
}

TEST(MovieGen, PopularityIsZipfSkewed) {
  dw::MovieGenOptions o;
  o.num_movies = 100;
  o.num_records = 20000;
  const dw::MovieLogGenerator gen(o);
  std::unordered_map<std::string, int> counts;
  for (const auto& r : gen.generate()) ++counts[r.key];
  // Rank-0 movie receives far more reviews than a mid-rank movie.
  EXPECT_GT(counts[gen.movie_key(0)], 5 * std::max(1, counts[gen.movie_key(50)]));
}

TEST(MovieGen, ContentClusteringAroundRelease) {
  // Most of a popular movie's reviews land within a few decay constants of
  // its release (the phenomenon behind Fig. 1a).
  dw::MovieGenOptions o;
  o.num_movies = 50;
  o.num_records = 30000;
  o.background_fraction = 0.0;
  const dw::MovieLogGenerator gen(o);
  const auto& movie = gen.movies()[0];
  std::uint64_t within = 0, total = 0;
  for (const auto& r : gen.generate()) {
    if (r.key != movie.key) continue;
    ++total;
    if (r.timestamp >= movie.release &&
        r.timestamp <= movie.release + 3 * static_cast<std::uint64_t>(
                                              o.decay_seconds)) {
      ++within;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(total), 0.90);
}

TEST(MovieGen, DeterministicForSeed) {
  dw::MovieGenOptions o;
  o.num_movies = 10;
  o.num_records = 500;
  const auto a = dw::MovieLogGenerator(o).generate();
  const auto b = dw::MovieLogGenerator(o).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(MovieGen, PayloadHasRating) {
  dw::MovieGenOptions o;
  o.num_movies = 5;
  o.num_records = 100;
  for (const auto& r : dw::MovieLogGenerator(o).generate()) {
    EXPECT_EQ(r.payload.rfind("rating=", 0), 0u) << r.payload;
  }
}

TEST(MovieGen, RejectsBadOptions) {
  dw::MovieGenOptions o;
  o.num_movies = 0;
  EXPECT_THROW(dw::MovieLogGenerator{o}, std::invalid_argument);
  o = {};
  o.num_records = 0;
  EXPECT_THROW(dw::MovieLogGenerator{o}, std::invalid_argument);
  const dw::MovieLogGenerator gen{dw::MovieGenOptions{.num_movies = 3}};
  EXPECT_THROW(gen.movie_key(3), std::out_of_range);
}

// ---- github generator ----

TEST(GithubGen, EventTypesAndWeightsAligned) {
  EXPECT_EQ(dw::github_event_types().size(), dw::github_event_weights().size());
  EXPECT_GT(dw::github_event_types().size(), 20u);  // "more than 20 event types"
}

TEST(GithubGen, AllKeysAreKnownTypes) {
  dw::GithubGenOptions o;
  o.num_records = 5000;
  const std::set<std::string> types(dw::github_event_types().begin(),
                                    dw::github_event_types().end());
  for (const auto& r : dw::GithubLogGenerator(o).generate()) {
    EXPECT_TRUE(types.contains(r.key)) << r.key;
  }
}

TEST(GithubGen, PushDominates) {
  dw::GithubGenOptions o;
  o.num_records = 30000;
  std::unordered_map<std::string, int> counts;
  for (const auto& r : dw::GithubLogGenerator(o).generate()) ++counts[r.key];
  EXPECT_GT(counts["PushEvent"], counts["IssueEvent"]);
  EXPECT_GT(counts["PushEvent"], o.num_records / 4);
}

TEST(GithubGen, NoContentClustering) {
  // IssueEvent spreads over the whole horizon: split the horizon into 8
  // windows, every window should contain some IssueEvents (unlike movies).
  dw::GithubGenOptions o;
  o.num_records = 40000;
  const dw::GithubLogGenerator gen(o);
  std::vector<int> windows(8, 0);
  for (const auto& r : gen.generate()) {
    if (r.key == "IssueEvent") {
      ++windows[r.timestamp * 8 / o.horizon_seconds];
    }
  }
  for (const int w : windows) EXPECT_GT(w, 0);
}

TEST(GithubGen, SortedAndDeterministic) {
  dw::GithubGenOptions o;
  o.num_records = 2000;
  const auto a = dw::GithubLogGenerator(o).generate();
  const auto b = dw::GithubLogGenerator(o).generate();
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const dw::Record& x, const dw::Record& y) {
                               return x.timestamp < y.timestamp;
                             }));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(GithubGen, RejectsBadOptions) {
  dw::GithubGenOptions o;
  o.drift = 1.5;
  EXPECT_THROW(dw::GithubLogGenerator{o}, std::invalid_argument);
  o = {};
  o.num_records = 0;
  EXPECT_THROW(dw::GithubLogGenerator{o}, std::invalid_argument);
}

// ---- worldcup generator ----

TEST(WorldCup, BurstDaysConcentrateTraffic) {
  dw::WorldCupGenOptions o;
  o.num_records = 30000;
  o.num_days = 30;
  o.num_match_days = 5;
  const dw::WorldCupLogGenerator gen(o);
  const auto recs = gen.generate();
  // Per-day record counts: burst days get ~3x base traffic.
  std::vector<int> per_day(o.num_days, 0);
  for (const auto& r : recs) ++per_day[r.timestamp / 86400];
  const int max_day = *std::max_element(per_day.begin(), per_day.end());
  const int min_day = *std::min_element(per_day.begin(), per_day.end());
  EXPECT_GT(max_day, 2 * min_day);
}

TEST(WorldCup, KeysArePages) {
  dw::WorldCupGenOptions o;
  o.num_records = 1000;
  for (const auto& r : dw::WorldCupLogGenerator(o).generate()) {
    EXPECT_EQ(r.key.rfind("page_", 0), 0u);
  }
}

TEST(WorldCup, RejectsBadOptions) {
  dw::WorldCupGenOptions o;
  o.num_match_days = 100;
  o.num_days = 10;
  EXPECT_THROW(dw::WorldCupLogGenerator{o}, std::invalid_argument);
}

// ---- ingestion + ground truth ----

namespace {
datanet::dfs::MiniDfs small_dfs() {
  datanet::dfs::DfsOptions o;
  o.block_size = 4096;
  o.replication = 2;
  o.seed = 21;
  return datanet::dfs::MiniDfs(datanet::dfs::ClusterTopology::flat(4), o);
}
}  // namespace

TEST(Ingest, WritesAllRecords) {
  auto fs = small_dfs();
  dw::MovieGenOptions o;
  o.num_movies = 10;
  o.num_records = 1000;
  const auto recs = dw::MovieLogGenerator(o).generate();
  const auto blocks = dw::ingest(fs, "/movies", recs);
  EXPECT_GT(blocks, 1u);
  std::uint64_t count = 0;
  for (const auto b : fs.blocks_of("/movies")) {
    dw::for_each_record(fs.read_block(b), [&](const dw::RecordView&) { ++count; });
  }
  EXPECT_EQ(count, 1000u);
}

TEST(GroundTruth, TotalsMatchManualScan) {
  auto fs = small_dfs();
  dw::MovieGenOptions o;
  o.num_movies = 10;
  o.num_records = 800;
  const auto recs = dw::MovieLogGenerator(o).generate();
  dw::ingest(fs, "/movies", recs);
  const dw::GroundTruth truth(fs, "/movies");

  std::unordered_map<dw::SubDatasetId, std::uint64_t> manual;
  std::uint64_t manual_total = 0;
  for (const auto& r : recs) {
    const auto line_size = dw::encode_record(r).size() + 1;
    manual[dw::subdataset_id(r.key)] += line_size;
    manual_total += line_size;
  }
  EXPECT_EQ(truth.total_bytes(), manual_total);
  EXPECT_EQ(truth.num_subdatasets(), manual.size());
  for (const auto& [id, size] : manual) EXPECT_EQ(truth.total_size(id), size);
}

TEST(GroundTruth, DistributionSumsToTotal) {
  auto fs = small_dfs();
  dw::MovieGenOptions o;
  o.num_movies = 8;
  o.num_records = 600;
  const dw::MovieLogGenerator gen(o);
  dw::ingest(fs, "/movies", gen.generate());
  const dw::GroundTruth truth(fs, "/movies");
  const auto id = dw::subdataset_id(gen.movie_key(0));
  const auto dist = truth.distribution(id);
  EXPECT_EQ(dist.size(), truth.num_blocks());
  std::uint64_t sum = 0;
  for (const auto v : dist) sum += v;
  EXPECT_EQ(sum, truth.total_size(id));
}

TEST(GroundTruth, IdsBySizeDescending) {
  auto fs = small_dfs();
  dw::MovieGenOptions o;
  o.num_movies = 12;
  o.num_records = 700;
  dw::ingest(fs, "/movies", dw::MovieLogGenerator(o).generate());
  const dw::GroundTruth truth(fs, "/movies");
  const auto ids = truth.ids_by_size();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_GE(truth.total_size(ids[i - 1]), truth.total_size(ids[i]));
  }
}

TEST(GroundTruth, UnknownIdIsZero) {
  auto fs = small_dfs();
  dw::MovieGenOptions o;
  o.num_movies = 3;
  o.num_records = 100;
  dw::ingest(fs, "/movies", dw::MovieLogGenerator(o).generate());
  const dw::GroundTruth truth(fs, "/movies");
  EXPECT_EQ(truth.total_size(dw::subdataset_id("not_a_movie")), 0u);
  EXPECT_EQ(truth.size_in_block(999, 1), 0u);
}
