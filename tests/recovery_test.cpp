// Tests for the crash-consistency layer: EditLog framing and torn-tail
// replay, FsImage checkpoints, MiniDfs::recover (checkpoint + journal
// suffix), the kCrashNameNode fault seam, the background ReplicationMonitor,
// and the crash-atomic / CRC-checked MetaStore format. The heart of the
// suite is a truncation fuzz: the journal of a scripted mutation history is
// cut at EVERY byte offset and recovery must always land on a valid prefix
// state — bit-identical to the live namespace at each mutation boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/edit_log.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/fs_image.hpp"
#include "dfs/fsck.hpp"
#include "dfs/mini_dfs.hpp"
#include "dfs/replication_monitor.hpp"
#include "elasticmap/elastic_map.hpp"
#include "elasticmap/meta_store.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "sim/selection_sim.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"

namespace dc = datanet::core;
namespace dd = datanet::dfs;
namespace de = datanet::elasticmap;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;
namespace dw = datanet::workload;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("datanet_recovery_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir / name).string();
  }
};

std::vector<dw::Record> small_records(std::uint64_t n, std::uint64_t seed) {
  dw::MovieGenOptions o;
  o.num_records = n;
  o.num_movies = 6;
  o.seed = seed;
  return dw::MovieLogGenerator(o).generate();
}

void copy_truncated(const std::string& src, const std::string& dst,
                    std::uint64_t keep_bytes) {
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(std::min<std::uint64_t>(keep_bytes, bytes.size()));
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(fs::file_size(path));
}

// A journaled cluster put through a scripted mutation history, recording
// (journal offset, namespace digest) after every mutating call. The blank
// checkpoint taken right after attach makes recover(image, journal-prefix)
// reconstruct any recorded point.
struct DurableCluster {
  TempDir tmp;
  std::unique_ptr<dd::EditLog> journal;
  std::unique_ptr<dd::MiniDfs> dfs;
  std::string image_path;
  // (bytes_written, digest) after each mutation, index 0 = blank namespace.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> history;

  explicit DurableCluster(bool inline_repair = true) {
    dd::DfsOptions opt;
    opt.block_size = 2048;
    opt.replication = 3;
    opt.seed = 99;
    opt.inline_repair = inline_repair;
    dfs = std::make_unique<dd::MiniDfs>(dd::ClusterTopology::flat(6), opt);
    journal = std::make_unique<dd::EditLog>(tmp.file("namenode.edits"));
    dfs->attach_edit_log(journal.get());
    image_path = tmp.file("namenode.fsimage");
    dd::FsImage::save(*dfs, image_path);
    record();
  }

  void record() {
    history.emplace_back(journal->bytes_written(), dfs->namespace_digest());
  }

  // Ingest, decommission, corrupt-report, move: one of each mutation class.
  void run_history() {
    dw::ingest(*dfs, "/logs/a", small_records(40, 5));
    record();
    dw::ingest(*dfs, "/logs/b", small_records(12, 6));
    record();
    dfs->decommission(1);
    record();
    // Report a (healthy-sibling) corrupt copy on some block.
    const auto& reps = dfs->block(0).replicas;
    ASSERT_GE(reps.size(), 2u);
    dfs->corrupt_replica(0, reps[0]);
    ASSERT_TRUE(dfs->report_corrupt_replica(0, reps[0]));
    record();
    // A balancer move.
    const auto& reps1 = dfs->block(1).replicas;
    for (dd::NodeId to = 0; to < 6; ++to) {
      if (dfs->is_active(to) && !dfs->is_local(1, to)) {
        dfs->move_replica(1, reps1[0], to);
        break;
      }
    }
    record();
  }
};

}  // namespace

// ---------------------------------------------------------------- EditLog --

TEST(EditLog, EncodeDecodeRoundTripsEveryOp) {
  std::vector<dd::EditRecord> records;
  records.push_back({.op = dd::EditOp::kCreateFile, .file = "/a/b"});
  records.push_back({.op = dd::EditOp::kAddBlock,
                     .file = "/a/b",
                     .block = 7,
                     .num_records = 3,
                     .checksum = 0xdeadbeef,
                     .replicas = {2, 0, 5},
                     .data = std::string("line1\nline2\n")});
  records.push_back({.op = dd::EditOp::kDecommission, .node = 4});
  records.push_back({.op = dd::EditOp::kRemoveReplica, .block = 9, .node = 1});
  records.push_back({.op = dd::EditOp::kAddReplica, .block = 9, .node = 3});
  records.push_back(
      {.op = dd::EditOp::kMoveReplica, .block = 2, .node = 0, .node2 = 5});

  for (const auto& r : records) {
    const auto back = dd::EditLog::decode(dd::EditLog::encode(r));
    EXPECT_EQ(back.op, r.op);
    EXPECT_EQ(back.file, r.file);
    EXPECT_EQ(back.block, r.block);
    EXPECT_EQ(back.num_records, r.num_records);
    EXPECT_EQ(back.checksum, r.checksum);
    EXPECT_EQ(back.node, r.node);
    EXPECT_EQ(back.node2, r.node2);
    EXPECT_EQ(back.replicas, r.replicas);
    EXPECT_EQ(back.data, r.data);
  }
}

TEST(EditLog, DecodeRejectsGarbage) {
  EXPECT_THROW((void)dd::EditLog::decode(""), std::runtime_error);
  EXPECT_THROW((void)dd::EditLog::decode("\xff garbage"), std::runtime_error);
  // Trailing bytes after a valid payload are corruption, not slack.
  auto payload = dd::EditLog::encode({.op = dd::EditOp::kDecommission, .node = 1});
  payload += "x";
  EXPECT_THROW((void)dd::EditLog::decode(payload), std::runtime_error);
}

TEST(EditLog, AppendReplayRoundTrip) {
  TempDir tmp;
  dd::EditLog log(tmp.file("edits"));
  log.append({.op = dd::EditOp::kCreateFile, .file = "/f"});
  log.append({.op = dd::EditOp::kAddReplica, .block = 3, .node = 2});
  const auto r = dd::EditLog::replay(log.path());
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.valid_bytes, log.bytes_written());
  EXPECT_FALSE(r.torn);
  EXPECT_EQ(r.frame_ends.size(), 2u);
  EXPECT_EQ(r.frame_ends.back(), log.bytes_written());
  EXPECT_EQ(r.records[1].op, dd::EditOp::kAddReplica);
}

TEST(EditLog, MissingFileReplaysEmpty) {
  const auto r = dd::EditLog::replay("/nonexistent/no-such-journal");
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
}

TEST(EditLog, SealedLogRefusesAppends) {
  TempDir tmp;
  dd::EditLog log(tmp.file("edits"));
  log.append({.op = dd::EditOp::kCreateFile, .file = "/f"});
  log.seal();
  EXPECT_TRUE(log.sealed());
  EXPECT_THROW(log.append({.op = dd::EditOp::kCreateFile, .file = "/g"}),
               std::logic_error);
}

TEST(EditLog, CorruptedFrameStopsReplayAtPrefix) {
  TempDir tmp;
  dd::EditLog log(tmp.file("edits"));
  log.append({.op = dd::EditOp::kCreateFile, .file = "/f"});
  const auto first_end = log.bytes_written();
  log.append({.op = dd::EditOp::kAddReplica, .block = 1, .node = 1});
  log.append({.op = dd::EditOp::kAddReplica, .block = 2, .node = 2});
  // Flip a payload byte of the SECOND frame: replay keeps frame 1 only.
  flip_byte(log.path(), first_end + 9);
  const auto r = dd::EditLog::replay(log.path());
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.valid_bytes, first_end);
  EXPECT_TRUE(r.torn);
  EXPECT_GT(r.dropped_bytes, 0u);
}

// --------------------------------------------------------------- recovery --

TEST(Recovery, RecoverMatchesLiveDigestAtEveryMutationBoundary) {
  DurableCluster c;
  c.run_history();
  for (const auto& [offset, digest] : c.history) {
    const auto cut = c.tmp.file("edits.cut");
    copy_truncated(c.journal->path(), cut, offset);
    dd::RecoveryInfo info;
    const auto recovered = dd::MiniDfs::recover(c.image_path, cut, &info);
    EXPECT_EQ(recovered.namespace_digest(), digest)
        << "journal prefix of " << offset << " bytes";
    EXPECT_FALSE(info.torn);
  }
}

TEST(Recovery, TruncationAtEveryByteOffsetYieldsAValidPrefixState) {
  DurableCluster c;
  c.run_history();
  const auto full = dd::EditLog::replay(c.journal->path());
  ASSERT_FALSE(full.torn);
  const auto total = file_size(c.journal->path());
  ASSERT_EQ(total, full.valid_bytes);
  // Expected digest at every frame boundary, via recovery from each prefix.
  const auto cut = c.tmp.file("edits.cut");
  std::vector<std::uint64_t> frame_digests(full.frame_ends.size());
  for (std::size_t i = 0; i < full.frame_ends.size(); ++i) {
    copy_truncated(c.journal->path(), cut, full.frame_ends[i]);
    frame_digests[i] = dd::MiniDfs::recover(c.image_path, cut).namespace_digest();
  }
  const auto blank_digest =
      dd::FsImage::load(c.image_path).namespace_digest();

  for (std::uint64_t keep = 0; keep <= total; ++keep) {
    copy_truncated(c.journal->path(), cut, keep);
    const auto r = dd::EditLog::replay(cut);
    // The valid prefix is the largest run of whole frames that fits.
    EXPECT_LE(r.valid_bytes, keep);
    const bool at_boundary =
        r.valid_bytes == 0 ||
        std::find(full.frame_ends.begin(), full.frame_ends.end(),
                  r.valid_bytes) != full.frame_ends.end();
    EXPECT_TRUE(at_boundary) << "keep=" << keep;
    EXPECT_EQ(r.torn, r.valid_bytes != keep) << "keep=" << keep;
    // Recovery from any truncation is exactly the state at that boundary.
    const auto digest =
        dd::MiniDfs::recover(c.image_path, cut).namespace_digest();
    const auto it = std::find(full.frame_ends.begin(), full.frame_ends.end(),
                              r.valid_bytes);
    const auto expected =
        it == full.frame_ends.end()
            ? blank_digest
            : frame_digests[static_cast<std::size_t>(
                  it - full.frame_ends.begin())];
    EXPECT_EQ(digest, expected) << "keep=" << keep;
  }
}

TEST(Recovery, CheckpointPlusSuffixEqualsCheckpointPlusFullJournal) {
  DurableCluster c;
  dw::ingest(*c.dfs, "/logs/a", small_records(40, 5));
  // Mid-history checkpoint: everything so far is covered by the image.
  const auto mid_image = c.tmp.file("mid.fsimage");
  dd::FsImage::save(*c.dfs, mid_image);
  EXPECT_EQ(dd::FsImage::journal_covered(mid_image), c.journal->bytes_written());
  // More damage after the checkpoint.
  c.dfs->decommission(2);
  dw::ingest(*c.dfs, "/logs/b", small_records(10, 7));
  const auto live = c.dfs->namespace_digest();

  dd::RecoveryInfo from_mid;
  const auto a =
      dd::MiniDfs::recover(mid_image, c.journal->path(), &from_mid);
  dd::RecoveryInfo from_blank;
  const auto b =
      dd::MiniDfs::recover(c.image_path, c.journal->path(), &from_blank);
  EXPECT_EQ(a.namespace_digest(), live);
  EXPECT_EQ(b.namespace_digest(), live);
  // The mid checkpoint actually skipped the covered prefix; replaying the
  // FULL journal over it (idempotent apply) must also converge to `live`.
  EXPECT_GT(from_mid.skipped_frames, 0u);
  EXPECT_LT(from_mid.replayed_frames, from_blank.replayed_frames);
  EXPECT_EQ(from_blank.skipped_frames, 0u);
}

TEST(Recovery, CrashTruncateDropsTornTailOnly) {
  DurableCluster c;
  c.run_history();
  // Remember the state at the last recorded boundary, then tear 3 bytes off
  // the final frame: recovery must land on the previous frame's state.
  const auto full = dd::EditLog::replay(c.journal->path());
  ASSERT_GE(full.frame_ends.size(), 2u);
  const auto keep = full.frame_ends.back() - 3;
  c.dfs->crash_namenode(keep);
  EXPECT_TRUE(c.journal->sealed());
  EXPECT_EQ(c.dfs->edit_log(), nullptr);
  EXPECT_EQ(file_size(c.journal->path()), keep);

  dd::RecoveryInfo info;
  const auto recovered =
      dd::MiniDfs::recover(c.image_path, c.journal->path(), &info);
  EXPECT_TRUE(info.torn);
  EXPECT_GT(info.dropped_bytes, 0u);
  const auto cut = c.tmp.file("edits.prev");
  copy_truncated(c.journal->path(), cut,
                 full.frame_ends[full.frame_ends.size() - 2]);
  EXPECT_EQ(recovered.namespace_digest(),
            dd::MiniDfs::recover(c.image_path, cut).namespace_digest());
}

TEST(Recovery, CrashNameNodeFaultEventFiresThroughInjector) {
  DurableCluster c;
  dw::ingest(*c.dfs, "/logs/a", small_records(30, 5));
  const auto live = c.dfs->namespace_digest();
  dd::FaultInjector injector(
      *c.dfs, {{.at_task = 1, .kind = dd::FaultKind::kCrashNameNode}});
  injector.advance(5);
  EXPECT_EQ(injector.stats().namenode_crashes, 1u);
  EXPECT_TRUE(c.journal->sealed());
  const auto recovered =
      dd::MiniDfs::recover(c.image_path, c.journal->path());
  EXPECT_EQ(recovered.namespace_digest(), live);
}

TEST(Recovery, CrashNameNodeIsNoOpWithoutJournal) {
  dd::DfsOptions opt;
  opt.block_size = 2048;
  dd::MiniDfs dfs(dd::ClusterTopology::flat(4), opt);
  dw::ingest(dfs, "/logs/a", small_records(10, 3));
  dd::FaultInjector injector(
      dfs, {{.at_task = 1, .kind = dd::FaultKind::kCrashNameNode}});
  injector.advance(5);
  EXPECT_EQ(injector.stats().namenode_crashes, 0u);
}

// ---------------------------------------------------------------- FsImage --

TEST(FsImage, SaveLoadRoundTripAndAtomicity) {
  DurableCluster c;
  c.run_history();
  const auto path = c.tmp.file("check.fsimage");
  dd::FsImage::save(*c.dfs, path);
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp file must be renamed away";

  const auto loaded = dd::FsImage::load(path);
  EXPECT_EQ(loaded.namespace_digest(), c.dfs->namespace_digest());
  EXPECT_EQ(loaded.num_blocks(), c.dfs->num_blocks());
  EXPECT_EQ(loaded.num_active_nodes(), c.dfs->num_active_nodes());
  EXPECT_EQ(loaded.list_files(), c.dfs->list_files());
  // Replicas and bytes survive: every block is readable from the image.
  for (dd::BlockId b = 0; b < loaded.num_blocks(); ++b) {
    EXPECT_EQ(loaded.read_block(b), c.dfs->read_block(b));
    EXPECT_EQ(loaded.block(b).replicas, c.dfs->block(b).replicas);
  }

  const auto st = dd::FsImage::inspect(path);
  EXPECT_EQ(st.file_bytes, file_size(path));
  EXPECT_EQ(st.num_blocks, c.dfs->num_blocks());
  EXPECT_EQ(st.journal_covered, c.journal->bytes_written());
}

TEST(FsImage, BitFlipAndTruncationAreRejectedTyped) {
  DurableCluster c;
  dw::ingest(*c.dfs, "/logs/a", small_records(20, 5));
  const auto path = c.tmp.file("check.fsimage");
  dd::FsImage::save(*c.dfs, path);

  const auto corrupt = c.tmp.file("bad.fsimage");
  fs::copy_file(path, corrupt);
  flip_byte(corrupt, file_size(corrupt) / 2);
  EXPECT_THROW((void)dd::FsImage::load(corrupt), dd::FsImageError);

  const auto cut = c.tmp.file("cut.fsimage");
  copy_truncated(path, cut, file_size(path) - 5);
  EXPECT_THROW((void)dd::FsImage::load(cut), dd::FsImageError);
  EXPECT_THROW((void)dd::FsImage::load(c.tmp.file("missing.fsimage")),
               dd::FsImageError);
}

// --------------------------------------------------- ReplicationMonitor --

namespace {

// Non-durable cluster with deferred (monitor-driven) healing.
dd::MiniDfs deferred_cluster(std::uint32_t nodes, std::uint32_t replication,
                             std::uint64_t records = 60) {
  dd::DfsOptions opt;
  opt.block_size = 2048;
  opt.replication = replication;
  opt.seed = 31;
  opt.inline_repair = false;
  dd::MiniDfs dfs(dd::ClusterTopology::flat(nodes), opt);
  dw::ingest(dfs, "/logs/a", small_records(records, 9));
  return dfs;
}

}  // namespace

TEST(ReplicationMonitor, DeferredModeRecordsDamageWithoutRepairing) {
  auto dfs = deferred_cluster(8, 3);
  const auto before = dd::fsck(dfs);
  ASSERT_TRUE(before.healthy());
  dfs.decommission(0);
  const auto after = dd::fsck(dfs);
  EXPECT_GT(after.under_replicated, 0u) << "no inline healing in deferred mode";
}

TEST(ReplicationMonitor, DrainHealsKilledNodeBacklog) {
  auto dfs = deferred_cluster(8, 3);
  dfs.decommission(0);
  dfs.decommission(3);
  const auto damaged = dd::fsck(dfs).under_replicated;
  ASSERT_GT(damaged, 0u);

  dd::ReplicationMonitor monitor(dfs, {.max_repairs_per_tick = 2});
  const auto ticks = monitor.drain();
  EXPECT_GT(ticks, 0u);
  EXPECT_TRUE(dd::fsck(dfs).healthy());
  const auto& s = monitor.stats();
  EXPECT_EQ(s.healed_blocks, damaged);
  EXPECT_GE(s.repairs, damaged);
  EXPECT_EQ(s.unrepairable, 0u);
  EXPECT_GT(s.mttr_ticks, 0u);
  EXPECT_TRUE(monitor.queue().empty());
}

TEST(ReplicationMonitor, TickRespectsRateLimit) {
  auto dfs = deferred_cluster(8, 3, /*records=*/200);
  dfs.decommission(0);
  dfs.decommission(3);
  dd::ReplicationMonitor monitor(dfs, {.max_repairs_per_tick = 1});
  const auto pending = monitor.scan();
  ASSERT_GT(pending, 2u);
  EXPECT_EQ(monitor.tick(), 1u) << "one repair per tick at rate 1";
  EXPECT_EQ(monitor.tick(), 1u);
  EXPECT_EQ(monitor.stats().repairs, 2u);
}

TEST(ReplicationMonitor, ZeroRateIsRejected) {
  auto dfs = deferred_cluster(4, 2, 20);
  EXPECT_THROW(dd::ReplicationMonitor(dfs, {.max_repairs_per_tick = 0}),
               std::invalid_argument);
}

TEST(ReplicationMonitor, MostDamagedBlocksHealFirst) {
  auto dfs = deferred_cluster(8, 3);
  // Block A loses two replicas, block B one: A must head the queue.
  const auto& blocks_a = dfs.block(0).replicas;
  const auto a0 = blocks_a[0];
  const auto a1 = blocks_a[1];
  dfs.corrupt_replica(0, a0);
  ASSERT_TRUE(dfs.report_corrupt_replica(0, a0));
  dfs.corrupt_replica(0, a1);
  ASSERT_TRUE(dfs.report_corrupt_replica(0, a1));
  const auto b0 = dfs.block(1).replicas[0];
  dfs.corrupt_replica(1, b0);
  ASSERT_TRUE(dfs.report_corrupt_replica(1, b0));

  dd::ReplicationMonitor monitor(dfs, {.max_repairs_per_tick = 4});
  ASSERT_EQ(monitor.scan(), 2u);
  const auto queue = monitor.queue();
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].block, 0u);
  EXPECT_EQ(queue[0].surviving, 1u);
  EXPECT_EQ(queue[1].block, 1u);
  EXPECT_EQ(queue[1].surviving, 2u);
}

TEST(ReplicationMonitor, ScrubDropsMarkedCopiesWithHealthySiblings) {
  auto dfs = deferred_cluster(8, 3);
  // Mark (but do not report) two copies bad: the scan's scrub pass is what
  // turns the marks into under-replication the queue can heal.
  dfs.corrupt_replica(0, dfs.block(0).replicas[0]);
  dfs.corrupt_replica(2, dfs.block(2).replicas[1]);
  ASSERT_TRUE(dd::fsck(dfs).healthy()) << "marks alone don't change counts";

  dd::ReplicationMonitor monitor(dfs, {.max_repairs_per_tick = 4});
  monitor.drain();
  EXPECT_EQ(monitor.stats().scrubbed_replicas, 2u);
  EXPECT_EQ(monitor.stats().healed_blocks, 2u);
  EXPECT_TRUE(dd::fsck(dfs).healthy());
  EXPECT_TRUE(dfs.corrupt_replica_marks(0).empty());
  EXPECT_TRUE(dfs.corrupt_replica_marks(2).empty());
}

TEST(ReplicationMonitor, MediaCorruptBlockIsUnrepairableButDrainTerminates) {
  auto dfs = deferred_cluster(6, 2);
  // Every copy of block 0 is bad (media corruption), then one holder dies:
  // no healthy source exists, so the block can never be healed.
  dfs.corrupt_block(0);
  dfs.decommission(dfs.block(0).replicas[0]);
  dd::ReplicationMonitor monitor(dfs, {.max_repairs_per_tick = 4});
  const auto ticks = monitor.drain();
  EXPECT_LT(ticks, 100u) << "drain must not spin on an unhealable block";
  EXPECT_GT(monitor.stats().unrepairable, 0u);
  // The healthy remainder of the cluster still converged.
  for (const auto& u : dd::under_replicated_blocks(dfs)) {
    EXPECT_EQ(u.block, 0u) << "only the destroyed block may stay degraded";
  }
}

TEST(ReplicationMonitor, HealingIsJournaledForRecovery) {
  DurableCluster c(/*inline_repair=*/false);
  dw::ingest(*c.dfs, "/logs/a", small_records(40, 5));
  c.dfs->decommission(1);
  dd::ReplicationMonitor monitor(*c.dfs, {.max_repairs_per_tick = 2});
  monitor.drain();
  ASSERT_TRUE(dd::fsck(*c.dfs).healthy());
  // Every monitor repair was a journaled kAddReplica: a recovered NameNode
  // sees the healed namespace, not the damaged one.
  const auto recovered =
      dd::MiniDfs::recover(c.image_path, c.journal->path());
  EXPECT_EQ(recovered.namespace_digest(), c.dfs->namespace_digest());
  EXPECT_TRUE(dd::fsck(recovered).healthy());
}

// ----------------------------------------------- runtime + monitor seam --

namespace {

dc::ExperimentConfig deferred_cfg() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.replication = 3;
  cfg.seed = 17;
  cfg.inline_repair = false;
  return cfg;
}

}  // namespace

TEST(RuntimeRecovery, MonitorConvergesAfterKillAndCorruptPlan) {
  const auto cfg = deferred_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  auto injector = dd::FaultInjector::random_plan(
      *ds.dfs, /*seed=*/23, ds.dfs->num_blocks(), /*kill_nodes=*/2,
      /*corrupt_replicas=*/3);

  dc::ChecksumRetryReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::InjectedFaults faults(injector);
  dc::AnalyticBackend timing;
  dd::ReplicationMonitor monitor(*ds.dfs, {.max_repairs_per_tick = 2});
  dsch::DataNetScheduler sched;
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto sel = dc::SelectionRuntime(read, faults, timing)
                       .with_replication_monitor(monitor)
                       .run(*ds.dfs, ds.path, ds.hot_keys[0], sched, &net, cfg);

  // Acceptance: after the drain the namespace is fully healed.
  const auto post = dd::fsck(*ds.dfs);
  EXPECT_EQ(post.missing_blocks, 0u);
  EXPECT_EQ(post.under_replicated, 0u);
  EXPECT_EQ(sel.report.under_replicated, 0u);
  EXPECT_GT(sel.report.recovery.healed_blocks, 0u);
  EXPECT_EQ(sel.report.recovery.pending_repairs, 0u);
  EXPECT_GT(sel.report.recovery.monitor_ticks, 0u);
  EXPECT_GT(sel.report.recovery.mttr_ticks, 0u);
}

TEST(RuntimeRecovery, HealedReportIsBitIdenticalAcrossEngineThreads) {
  std::vector<std::string> reports;
  for (const std::uint32_t threads : {1u, 4u}) {
    auto cfg = deferred_cfg();
    cfg.execution_threads = threads;
    auto ds = dc::make_movie_dataset(cfg, 24, 150);
    auto injector = dd::FaultInjector::random_plan(
        *ds.dfs, /*seed=*/23, ds.dfs->num_blocks(), /*kill_nodes=*/2,
        /*corrupt_replicas=*/3);
    dc::ChecksumRetryReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    dc::InjectedFaults faults(injector);
    dc::AnalyticBackend timing;
    dd::ReplicationMonitor monitor(*ds.dfs, {.max_repairs_per_tick = 2});
    dsch::DataNetScheduler sched;
    const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    const auto sel =
        dc::SelectionRuntime(read, faults, timing)
            .with_replication_monitor(monitor)
            .run(*ds.dfs, ds.path, ds.hot_keys[0], sched, &net, cfg);
    reports.push_back(dm::report_to_json(sel.report, /*include_output=*/true));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_NE(reports[0].find("\"recovery\""), std::string::npos);
  EXPECT_NE(reports[0].find("\"healed_blocks\""), std::string::npos);
}

TEST(RuntimeRecovery, EventSimBackendCarriesRecoveryCounters) {
  const auto cfg = deferred_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  ds.dfs->decommission(0);  // pre-run damage; the run itself is clean

  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto graph = net.scheduling_graph(ds.hot_keys[0]);
  dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  datanet::sim::SelectionSimOptions sopt;
  sopt.cluster.num_nodes = cfg.num_nodes;
  datanet::sim::EventSimBackend backend(*ds.dfs, sopt);
  dd::ReplicationMonitor monitor(*ds.dfs, {.max_repairs_per_tick = 2});
  dsch::DataNetScheduler sched;
  const auto sel = dc::SelectionRuntime(read, faults, backend)
                       .with_replication_monitor(monitor)
                       .run_graph(*ds.dfs, graph, ds.hot_keys[0], sched, cfg,
                                  /*materialize=*/false);
  // Timing-only path: the drain still ran and the event-sim report carries
  // the recovery section.
  EXPECT_TRUE(dd::fsck(*ds.dfs).healthy());
  EXPECT_GT(sel.report.recovery.healed_blocks, 0u);
  EXPECT_EQ(sel.report.under_replicated, 0u);
  const auto json = dm::report_to_json(sel.report, false);
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
}

TEST(RuntimeRecovery, CleanRunsSurfaceUnderReplicationToo) {
  // (b) the under-replication count is reported even when nothing failed.
  auto cfg = deferred_cfg();
  cfg.inline_repair = true;
  auto ds = dc::make_movie_dataset(cfg, 16, 100);
  dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  dsch::DataNetScheduler sched;
  const auto clean = dc::SelectionRuntime(read, faults, timing)
                         .run(*ds.dfs, ds.path, ds.hot_keys[0], sched, nullptr, cfg);
  EXPECT_EQ(clean.report.under_replicated, 0u);

  // Deferred mode without a monitor: the stranded replicas are VISIBLE in
  // the clean-path report rather than silently healed.
  auto cfg2 = deferred_cfg();
  auto ds2 = dc::make_movie_dataset(cfg2, 16, 100);
  ds2.dfs->decommission(0);
  const auto expected = dd::fsck(*ds2.dfs).under_replicated;
  ASSERT_GT(expected, 0u);
  dc::DirectReadPolicy read2(*ds2.dfs, cfg2.remote_read_penalty);
  dc::NoFaults faults2;
  dc::AnalyticBackend timing2;
  dsch::DataNetScheduler sched2;
  const auto degraded =
      dc::SelectionRuntime(read2, faults2, timing2)
          .run(*ds2.dfs, ds2.path, ds2.hot_keys[0], sched2, nullptr, cfg2);
  EXPECT_EQ(degraded.report.under_replicated, expected);
}

// -------------------------------------------------------- MetaStore v2 --

namespace {

dc::StoredDataset meta_dataset() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 11;
  return dc::make_movie_dataset(cfg, 16, 100);
}

}  // namespace

TEST(MetaStoreDurability, SaveIsAtomicAndLeavesNoTempFile) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto path = tmp.file("meta.bin");
  de::MetaStore::save(em, path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Saving over an existing store also goes through the tmp+rename path.
  de::MetaStore::save(em, path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  (void)de::MetaStore::load(path);

  de::ShardedMetaStore::save(em, tmp.file("meta"), 3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    const auto shard = de::ShardedMetaStore::shard_file(tmp.file("meta"), s);
    EXPECT_TRUE(fs::exists(shard));
    EXPECT_FALSE(fs::exists(shard + ".tmp"));
  }
}

TEST(MetaStoreDurability, BitFlippedBlobFailsWithTypedError) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto path = tmp.file("meta.bin");
  de::MetaStore::save(em, path);

  // Flip a byte near the END of the file — inside some blob, past the
  // header/index — and both the eager and lazy paths must refuse it.
  const auto corrupt = tmp.file("meta.corrupt");
  fs::copy_file(path, corrupt);
  flip_byte(corrupt, file_size(corrupt) - 7);
  EXPECT_THROW((void)de::MetaStore::load(corrupt), de::MetaStoreCorruptError);

  de::MetaStore::Reader reader(corrupt);
  bool threw = false;
  for (std::uint64_t b = 0; b < reader.num_blocks(); ++b) {
    try {
      (void)reader.load_block(b);
    } catch (const de::MetaStoreCorruptError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "some blob must fail its CRC through the lazy Reader";
}

TEST(MetaStoreDurability, TruncatedStoreFailsWithTypedError) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto path = tmp.file("meta.bin");
  de::MetaStore::save(em, path);

  const auto cut = tmp.file("meta.cut");
  for (const double frac : {0.1, 0.5, 0.95}) {
    copy_truncated(path, cut,
                   static_cast<std::uint64_t>(
                       static_cast<double>(file_size(path)) * frac));
    EXPECT_THROW((void)de::MetaStore::load(cut), de::MetaStoreCorruptError);
  }
  // Bad magic is typed too.
  const auto junk = tmp.file("meta.junk");
  std::ofstream(junk, std::ios::binary) << "not a metastore at all";
  EXPECT_THROW((void)de::MetaStore::load(junk), de::MetaStoreCorruptError);
  EXPECT_THROW(de::MetaStore::Reader r(junk), de::MetaStoreCorruptError);
}
