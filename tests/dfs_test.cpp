// Tests for the simulated DFS: topology, placement policies, block cutting,
// replica maps, and the block/node inventories the schedulers rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "dfs/mini_dfs.hpp"

namespace dd = datanet::dfs;

// ---- topology ----

TEST(Topology, FlatSingleRack) {
  const auto t = dd::ClusterTopology::flat(8);
  EXPECT_EQ(t.num_nodes(), 8u);
  EXPECT_EQ(t.num_racks(), 1u);
  for (dd::NodeId n = 0; n < 8; ++n) EXPECT_EQ(t.rack_of(n), 0u);
  EXPECT_EQ(t.nodes_in_rack(0).size(), 8u);
}

TEST(Topology, RackedEvenSplit) {
  const auto t = dd::ClusterTopology::racked(12, 4);
  EXPECT_EQ(t.num_racks(), 3u);
  EXPECT_EQ(t.rack_of(0), 0u);
  EXPECT_EQ(t.rack_of(4), 1u);
  EXPECT_EQ(t.rack_of(11), 2u);
}

TEST(Topology, RackedUnevenLastRack) {
  const auto t = dd::ClusterTopology::racked(10, 4);
  EXPECT_EQ(t.num_racks(), 3u);
  EXPECT_EQ(t.nodes_in_rack(2).size(), 2u);
}

TEST(Topology, RejectsBadArgs) {
  EXPECT_THROW(dd::ClusterTopology::flat(0), std::invalid_argument);
  EXPECT_THROW(dd::ClusterTopology::racked(4, 0), std::invalid_argument);
  const auto t = dd::ClusterTopology::flat(2);
  EXPECT_THROW((void)t.rack_of(5), std::out_of_range);
  EXPECT_THROW((void)t.nodes_in_rack(3), std::out_of_range);
}

// ---- placement policies ----

TEST(Placement, RandomGivesDistinctNodes) {
  dd::RandomPlacement p;
  datanet::common::Rng rng(3);
  const auto t = dd::ClusterTopology::flat(10);
  for (int i = 0; i < 100; ++i) {
    const auto nodes = p.place(t, 3, rng);
    ASSERT_EQ(nodes.size(), 3u);
    std::set<dd::NodeId> s(nodes.begin(), nodes.end());
    EXPECT_EQ(s.size(), 3u);
  }
}

TEST(Placement, RandomCoversCluster) {
  dd::RandomPlacement p;
  datanet::common::Rng rng(5);
  const auto t = dd::ClusterTopology::flat(6);
  std::set<dd::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    for (const auto n : p.place(t, 2, rng)) seen.insert(n);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Placement, RandomThrowsWhenImpossible) {
  dd::RandomPlacement p;
  datanet::common::Rng rng(1);
  const auto t = dd::ClusterTopology::flat(2);
  EXPECT_THROW(p.place(t, 3, rng), std::invalid_argument);
}

TEST(Placement, RoundRobinCyclesPrimary) {
  dd::RoundRobinPlacement p;
  datanet::common::Rng rng(2);
  const auto t = dd::ClusterTopology::flat(4);
  for (int round = 0; round < 2; ++round) {
    for (dd::NodeId expect = 0; expect < 4; ++expect) {
      EXPECT_EQ(p.place(t, 1, rng)[0], expect);
    }
  }
}

TEST(Placement, RackAwareSecondReplicaOffRack) {
  dd::RackAwarePlacement p;
  datanet::common::Rng rng(9);
  const auto t = dd::ClusterTopology::racked(12, 4);
  for (int i = 0; i < 100; ++i) {
    const auto nodes = p.place(t, 3, rng);
    ASSERT_EQ(nodes.size(), 3u);
    const auto writer_rack = t.rack_of(nodes[0]);
    EXPECT_NE(t.rack_of(nodes[1]), writer_rack);
    // Replicas 2 and 3 share a rack (HDFS default policy).
    EXPECT_EQ(t.rack_of(nodes[1]), t.rack_of(nodes[2]));
  }
}

TEST(Placement, RackAwareFallsBackOnSingleRack) {
  dd::RackAwarePlacement p;
  datanet::common::Rng rng(10);
  const auto t = dd::ClusterTopology::flat(5);
  const auto nodes = p.place(t, 3, rng);
  std::set<dd::NodeId> s(nodes.begin(), nodes.end());
  EXPECT_EQ(s.size(), 3u);
}

// ---- MiniDfs ----

namespace {
dd::MiniDfs make_dfs(std::uint32_t nodes = 8, std::uint64_t block = 1024,
                     std::uint32_t repl = 3) {
  dd::DfsOptions o;
  o.block_size = block;
  o.replication = repl;
  o.seed = 42;
  return dd::MiniDfs(dd::ClusterTopology::flat(nodes), o);
}

std::string record_of_size(std::size_t n, char fill = 'x') {
  return std::string(n, fill);
}
}  // namespace

TEST(MiniDfs, RejectsBadOptions) {
  dd::DfsOptions o;
  o.block_size = 0;
  EXPECT_THROW(dd::MiniDfs(dd::ClusterTopology::flat(4), o), std::invalid_argument);
  o.block_size = 1024;
  o.replication = 0;
  EXPECT_THROW(dd::MiniDfs(dd::ClusterTopology::flat(4), o), std::invalid_argument);
  o.replication = 5;
  EXPECT_THROW(dd::MiniDfs(dd::ClusterTopology::flat(4), o), std::invalid_argument);
}

TEST(MiniDfs, WriteCreatesBlocksAtBoundary) {
  auto fs = make_dfs(8, 100);
  auto w = fs.create("/f");
  // Each record is 50 bytes incl. newline -> exactly 2 records per block.
  for (int i = 0; i < 6; ++i) w.append(record_of_size(49));
  w.close();
  EXPECT_EQ(fs.blocks_of("/f").size(), 3u);
  for (const auto b : fs.blocks_of("/f")) {
    EXPECT_EQ(fs.block(b).size_bytes, 100u);
    EXPECT_EQ(fs.block(b).num_records, 2u);
  }
}

TEST(MiniDfs, PartialLastBlock) {
  auto fs = make_dfs(8, 100);
  auto w = fs.create("/f");
  w.append(record_of_size(49));
  w.append(record_of_size(49));
  w.append(record_of_size(10));
  w.close();
  ASSERT_EQ(fs.blocks_of("/f").size(), 2u);
  EXPECT_EQ(fs.block(fs.blocks_of("/f")[1]).size_bytes, 11u);
}

TEST(MiniDfs, OversizedRecordGetsOwnBlock) {
  auto fs = make_dfs(8, 100);
  auto w = fs.create("/f");
  w.append(record_of_size(20));
  w.append(record_of_size(250));  // exceeds block size on its own
  w.append(record_of_size(20));
  w.close();
  ASSERT_EQ(fs.blocks_of("/f").size(), 3u);
  EXPECT_EQ(fs.block(fs.blocks_of("/f")[1]).size_bytes, 251u);
}

TEST(MiniDfs, RecordsNeverStraddleBlocks) {
  auto fs = make_dfs(8, 256);
  auto w = fs.create("/f");
  datanet::common::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    w.append(record_of_size(10 + rng.bounded(60)));
  }
  w.close();
  for (const auto b : fs.blocks_of("/f")) {
    const auto data = fs.read_block(b);
    EXPECT_FALSE(data.empty());
    EXPECT_EQ(data.back(), '\n');  // block ends at a record boundary
  }
}

TEST(MiniDfs, RejectsNewlineInRecord) {
  auto fs = make_dfs();
  auto w = fs.create("/f");
  EXPECT_THROW(w.append("bad\nrecord"), std::invalid_argument);
}

TEST(MiniDfs, AppendAfterCloseThrows) {
  auto fs = make_dfs();
  auto w = fs.create("/f");
  w.append("x");
  w.close();
  EXPECT_THROW(w.append("y"), std::logic_error);
}

TEST(MiniDfs, DestructorFlushesBuffer) {
  auto fs = make_dfs();
  {
    auto w = fs.create("/f");
    w.append("hello");
  }
  ASSERT_EQ(fs.blocks_of("/f").size(), 1u);
  EXPECT_EQ(fs.read_block(fs.blocks_of("/f")[0]), "hello\n");
}

TEST(MiniDfs, DuplicateCreateThrows) {
  auto fs = make_dfs();
  auto w = fs.create("/f");
  w.close();
  EXPECT_THROW(fs.create("/f"), std::invalid_argument);
}

TEST(MiniDfs, ReplicationOnDistinctNodes) {
  auto fs = make_dfs(8, 64, 3);
  auto w = fs.create("/f");
  for (int i = 0; i < 50; ++i) w.append(record_of_size(30));
  w.close();
  for (const auto b : fs.blocks_of("/f")) {
    const auto& reps = fs.block(b).replicas;
    ASSERT_EQ(reps.size(), 3u);
    std::set<dd::NodeId> s(reps.begin(), reps.end());
    EXPECT_EQ(s.size(), 3u);
  }
}

TEST(MiniDfs, NodeInventoriesMatchReplicaMap) {
  auto fs = make_dfs(6, 64, 2);
  auto w = fs.create("/f");
  for (int i = 0; i < 40; ++i) w.append(record_of_size(30));
  w.close();
  // Every replica appears in the hosting node's inventory, and vice versa.
  std::uint64_t replica_count = 0;
  for (const auto b : fs.blocks_of("/f")) {
    for (const auto n : fs.block(b).replicas) {
      const auto& inv = fs.blocks_on(n);
      EXPECT_NE(std::find(inv.begin(), inv.end(), b), inv.end());
      ++replica_count;
    }
  }
  std::uint64_t inventory_count = 0;
  for (dd::NodeId n = 0; n < 6; ++n) inventory_count += fs.blocks_on(n).size();
  EXPECT_EQ(inventory_count, replica_count);
  EXPECT_EQ(inventory_count, fs.num_blocks() * 2);
}

TEST(MiniDfs, IsLocalAgreesWithReplicas) {
  auto fs = make_dfs(8, 64, 3);
  auto w = fs.create("/f");
  for (int i = 0; i < 10; ++i) w.append(record_of_size(30));
  w.close();
  for (const auto b : fs.blocks_of("/f")) {
    const auto& reps = fs.block(b).replicas;
    for (dd::NodeId n = 0; n < 8; ++n) {
      const bool expect =
          std::find(reps.begin(), reps.end(), n) != reps.end();
      EXPECT_EQ(fs.is_local(b, n), expect);
    }
  }
}

TEST(MiniDfs, TotalBytesAndExists) {
  auto fs = make_dfs(8, 1024);
  EXPECT_FALSE(fs.exists("/f"));
  auto w = fs.create("/f");
  w.append(record_of_size(99));
  w.close();
  EXPECT_TRUE(fs.exists("/f"));
  EXPECT_EQ(fs.total_bytes(), 100u);
  EXPECT_EQ(fs.list_files().size(), 1u);
}

TEST(MiniDfs, DeterministicPlacementForSameSeed) {
  auto build = [] {
    auto fs = make_dfs(8, 64, 3);
    auto w = fs.create("/f");
    for (int i = 0; i < 30; ++i) w.append(record_of_size(30));
    w.close();
    std::vector<std::vector<dd::NodeId>> placements;
    for (const auto b : fs.blocks_of("/f")) placements.push_back(fs.block(b).replicas);
    return placements;
  };
  EXPECT_EQ(build(), build());
}

TEST(MiniDfs, UnknownLookupsThrow) {
  auto fs = make_dfs();
  EXPECT_THROW((void)fs.blocks_of("/nope"), std::out_of_range);
  EXPECT_THROW((void)fs.block(99), std::out_of_range);
  EXPECT_THROW((void)fs.read_block(99), std::out_of_range);
  EXPECT_THROW((void)fs.blocks_on(99), std::out_of_range);
}

TEST(MiniDfs, MultipleFilesIndependent) {
  auto fs = make_dfs(8, 128);
  auto a = fs.create("/a");
  a.append(record_of_size(50));
  a.close();
  auto b = fs.create("/b");
  b.append(record_of_size(60));
  b.close();
  EXPECT_EQ(fs.blocks_of("/a").size(), 1u);
  EXPECT_EQ(fs.blocks_of("/b").size(), 1u);
  EXPECT_NE(fs.blocks_of("/a")[0], fs.blocks_of("/b")[0]);
  EXPECT_EQ(fs.block(fs.blocks_of("/b")[0]).index_in_file, 0u);
}

// Property sweep: block accounting holds across block sizes and replication.
class DfsGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(DfsGeometrySweep, ByteConservation) {
  const auto [block_size, repl] = GetParam();
  dd::DfsOptions o;
  o.block_size = block_size;
  o.replication = repl;
  o.seed = 11;
  dd::MiniDfs fs(dd::ClusterTopology::flat(8), o);
  auto w = fs.create("/f");
  std::uint64_t written = 0;
  datanet::common::Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const auto n = 5 + rng.bounded(40);
    w.append(record_of_size(n));
    written += n + 1;
  }
  w.close();
  std::uint64_t stored = 0, records = 0;
  for (const auto b : fs.blocks_of("/f")) {
    stored += fs.block(b).size_bytes;
    records += fs.block(b).num_records;
    EXPECT_EQ(fs.read_block(b).size(), fs.block(b).size_bytes);
  }
  EXPECT_EQ(stored, written);
  EXPECT_EQ(records, 300u);
  EXPECT_EQ(fs.total_bytes(), written);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DfsGeometrySweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(128, 1024, 65536),
                       ::testing::Values<std::uint32_t>(1, 2, 3)));

// ---- fsck + balancer ----

#include "dfs/fsck.hpp"

TEST(Fsck, HealthyClusterReports) {
  auto fs = make_dfs(8, 256, 3);
  auto w = fs.create("/f");
  for (int i = 0; i < 60; ++i) w.append(record_of_size(60));
  w.close();
  const auto report = dd::fsck(fs);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.total_blocks, fs.num_blocks());
  EXPECT_EQ(report.healthy_blocks, fs.num_blocks());
  EXPECT_EQ(report.missing_blocks, 0u);
  std::uint64_t hosted = 0;
  for (const auto c : report.node_block_counts) hosted += c;
  EXPECT_EQ(hosted, fs.num_blocks() * 3);
}

TEST(Fsck, DetectsUnderReplicationAfterHeavyFailures) {
  // 4 nodes, replication 3: after 2 failures only 2 active nodes remain, so
  // blocks sit at 2 replicas — capped by the cluster, still "healthy".
  dd::DfsOptions o;
  o.block_size = 512;
  o.replication = 3;
  o.seed = 9;
  dd::MiniDfs fs(dd::ClusterTopology::flat(4), o);
  auto w = fs.create("/f");
  for (int i = 0; i < 40; ++i) w.append(record_of_size(60));
  w.close();
  (void)fs.decommission(0);
  (void)fs.decommission(1);
  const auto report = dd::fsck(fs);
  EXPECT_EQ(report.missing_blocks, 0u);
  EXPECT_EQ(report.under_replicated, 0u);  // capped at active nodes
  EXPECT_TRUE(report.healthy());
}

TEST(Fsck, ReportsMissingAfterSingleReplicaLoss) {
  auto fs = make_dfs(6, 512, 1);
  auto w = fs.create("/f");
  for (int i = 0; i < 30; ++i) w.append(record_of_size(60));
  w.close();
  const auto lost = fs.decommission(2);
  const auto report = dd::fsck(fs);
  EXPECT_EQ(report.missing_blocks, lost.size());
  EXPECT_EQ(report.healthy(), lost.empty());
}

TEST(Balancer, EvensOutSkewedReplicaCounts) {
  // Round-robin primary + random extras is already fair; skew it manually by
  // piling replicas onto node 0 via moves, then balance back.
  auto fs = make_dfs(6, 256, 2);
  auto w = fs.create("/f");
  for (int i = 0; i < 80; ++i) w.append(record_of_size(60));
  w.close();
  // Skew: move every movable replica to node 0.
  for (dd::NodeId n = 1; n < 6; ++n) {
    const auto hosted = fs.blocks_on(n);  // copy
    for (const auto b : std::vector<dd::BlockId>(hosted)) {
      const auto& reps = fs.block(b).replicas;
      if (std::find(reps.begin(), reps.end(), 0u) == reps.end()) {
        fs.move_replica(b, n, 0);
      }
    }
  }
  const auto before = dd::fsck(fs);
  const auto result = dd::balance_replicas(fs, 1);
  EXPECT_GT(result.moves, 0u);
  EXPECT_LT(result.after.replica_balance_cv, before.replica_balance_cv);
  const auto [mn, mx] = std::minmax_element(
      result.after.node_block_counts.begin(),
      result.after.node_block_counts.end());
  EXPECT_LE(*mx - *mn, 2u);
  // Replica invariants preserved.
  for (const auto b : fs.blocks_of("/f")) {
    const auto& reps = fs.block(b).replicas;
    std::set<dd::NodeId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 2u);
  }
}

TEST(Balancer, NoopOnBalancedCluster) {
  auto fs = make_dfs(4, 256, 2);
  auto w = fs.create("/f");
  for (int i = 0; i < 64; ++i) w.append(record_of_size(60));
  w.close();
  dd::balance_replicas(fs, 1);  // idempotence: second run does nothing
  const auto again = dd::balance_replicas(fs, 1);
  EXPECT_EQ(again.moves, 0u);
}

TEST(MoveReplica, ValidatesArguments) {
  auto fs = make_dfs(4, 256, 2);
  auto w = fs.create("/f");
  w.append(record_of_size(60));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  const auto& reps = fs.block(b).replicas;
  dd::NodeId holder = reps[0];
  dd::NodeId other = 0;
  while (std::find(reps.begin(), reps.end(), other) != reps.end()) ++other;
  EXPECT_THROW(fs.move_replica(99, holder, other), std::out_of_range);
  EXPECT_THROW(fs.move_replica(b, other, holder), std::invalid_argument);
  fs.move_replica(b, holder, other);
  EXPECT_TRUE(fs.is_local(b, other));
  EXPECT_FALSE(fs.is_local(b, holder));
}

// ---- checksums & corruption ----

TEST(Checksum, CleanBlockReadsBackVerified) {
  auto fs = make_dfs(6, 256, 2);
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  EXPECT_TRUE(fs.verify_block(b));
  EXPECT_NE(fs.block(b).checksum, 0u);
  EXPECT_EQ(fs.read_block(b).size(), 101u);
}

TEST(Checksum, CorruptBlockFailsEveryRead) {
  auto fs = make_dfs(6, 256, 3);
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  fs.corrupt_block(b);
  EXPECT_FALSE(fs.verify_block(b));
  try {
    (void)fs.read_block(b);
    FAIL() << "read of corrupt block must throw";
  } catch (const dd::BlockCorruptError& e) {
    EXPECT_EQ(e.block_id, b);
  }
  // Media corruption hits the single logical copy: every replica is bad.
  for (const auto n : fs.block(b).replicas) {
    EXPECT_FALSE(fs.replica_healthy(b, n));
  }
}

TEST(Checksum, CorruptReplicaOnlyPoisonsOneCopy) {
  auto fs = make_dfs(6, 256, 3);
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  const auto bad = fs.block(b).replicas[0];
  fs.corrupt_replica(b, bad);
  EXPECT_FALSE(fs.replica_healthy(b, bad));
  EXPECT_THROW((void)fs.read_replica(b, bad), dd::BlockCorruptError);
  for (const auto n : fs.block(b).replicas) {
    if (n == bad) continue;
    EXPECT_TRUE(fs.replica_healthy(b, n));
    EXPECT_EQ(fs.read_replica(b, n).size(), 101u);
  }
}

TEST(Checksum, ReportCorruptReplicaDropsAndReReplicates) {
  auto fs = make_dfs(6, 256, 3);
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  const auto bad = fs.block(b).replicas[0];
  fs.corrupt_replica(b, bad);
  EXPECT_TRUE(fs.report_corrupt_replica(b, bad));
  const auto& reps = fs.block(b).replicas;
  EXPECT_EQ(reps.size(), 3u);  // dropped one, re-replicated one
  EXPECT_EQ(std::find(reps.begin(), reps.end(), bad), reps.end());
  for (const auto n : reps) EXPECT_TRUE(fs.replica_healthy(b, n));
}

TEST(Checksum, ReportOnMediaCorruptionAdmitsDefeat) {
  auto fs = make_dfs(6, 256, 2);
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  fs.corrupt_block(b);
  // No healthy source exists anywhere: the report cannot re-replicate.
  EXPECT_FALSE(fs.report_corrupt_replica(b, fs.block(b).replicas[0]));
}

// ---- liveness-aware placement ----

TEST(Placement, ActiveMaskExcludesDeadNodes) {
  dd::RandomPlacement p;
  datanet::common::Rng rng(3);
  const auto t = dd::ClusterTopology::flat(6);
  const std::vector<bool> active{true, false, true, false, true, true};
  for (int i = 0; i < 100; ++i) {
    for (const auto n : p.place(t, active, 3, rng)) {
      EXPECT_TRUE(active[n]) << "placed on dead node " << n;
    }
  }
  EXPECT_THROW(p.place(t, {true, false, false, false, false, false}, 2, rng),
               std::invalid_argument);
}

TEST(Placement, RoundRobinSkipsDeadNodes) {
  dd::RoundRobinPlacement p;
  datanet::common::Rng rng(3);
  const auto t = dd::ClusterTopology::flat(5);
  const std::vector<bool> active{true, false, true, true, false};
  for (int i = 0; i < 20; ++i) {
    for (const auto n : p.place(t, active, 2, rng)) EXPECT_TRUE(active[n]);
  }
  EXPECT_THROW(p.place(t, {false, false, false, false, false}, 1, rng),
               std::invalid_argument);
}

TEST(Decommission, LaterWritesAvoidDeadNodes) {
  auto fs = make_dfs(6, 256, 3);
  auto w0 = fs.create("/before");
  for (int i = 0; i < 8; ++i) w0.append(record_of_size(100));
  w0.close();

  (void)fs.decommission(1);
  (void)fs.decommission(4);

  auto w1 = fs.create("/after");
  for (int i = 0; i < 8; ++i) w1.append(record_of_size(100));
  w1.close();
  for (const auto b : fs.blocks_of("/after")) {
    for (const auto n : fs.block(b).replicas) {
      EXPECT_NE(n, 1u);
      EXPECT_NE(n, 4u);
      EXPECT_TRUE(fs.is_active(n));
    }
  }
}

TEST(Decommission, WritesProceedUnderReplicatedWhenClusterShrinks) {
  auto fs = make_dfs(4, 256, 3);
  (void)fs.decommission(0);
  (void)fs.decommission(1);  // 2 active nodes < replication 3
  auto w = fs.create("/f");
  w.append(record_of_size(100));
  w.close();
  const auto b = fs.blocks_of("/f")[0];
  EXPECT_EQ(fs.block(b).replicas.size(), 2u);  // capped at active nodes
  (void)fs.decommission(2);
  EXPECT_EQ(fs.num_active_nodes(), 1u);
  auto w2 = fs.create("/g");
  w2.append(record_of_size(50));
  w2.close();
  EXPECT_EQ(fs.block(fs.blocks_of("/g")[0]).replicas.size(), 1u);
}
