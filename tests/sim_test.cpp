// Tests for the discrete-event cluster simulator: event-queue ordering,
// slot/disk/NIC semantics, pull scheduling, speculative execution, and
// agreement with hand-computed timelines; plus the selection-phase bridge
// (EventSimBackend inside the SelectionRuntime) over real schedulers.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/event_queue.hpp"
#include "sim/selection_sim.hpp"
#include "stats/descriptive.hpp"

namespace dsim = datanet::sim;

// ---- event queue ----

TEST(EventQueue, RunsInTimeOrder) {
  dsim::EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  dsim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  dsim::EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(2.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  dsim::EventQueue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

// ---- cluster sim ----

namespace {
// Serve tasks in fixed order to a given node mapping.
dsim::PullFn fixed_assignment(const std::vector<std::uint32_t>& task_node) {
  auto next = std::make_shared<std::vector<std::size_t>>();
  auto served = std::make_shared<std::vector<bool>>(task_node.size(), false);
  return [task_node, served](std::uint32_t node) -> std::optional<std::size_t> {
    for (std::size_t t = 0; t < task_node.size(); ++t) {
      if (!(*served)[t] && task_node[t] == node) {
        (*served)[t] = true;
        return t;
      }
    }
    return std::nullopt;
  };
}
}  // namespace

TEST(ClusterSim, SingleTaskTimeline) {
  // 1 MiB at 1 MiB/s disk + 2 s cpu at speed 1 => finish at 3 s.
  dsim::SimConfig cfg;
  cfg.num_nodes = 1;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1.0;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{{.input_bytes = 1 << 20,
                                          .cpu_seconds = 2.0,
                                          .remote = false}};
  const auto res = sim.run(tasks, fixed_assignment({0}));
  EXPECT_DOUBLE_EQ(res.task_finish[0], 3.0);
  EXPECT_DOUBLE_EQ(res.makespan, 3.0);
  EXPECT_EQ(res.remote_reads, 0u);
}

TEST(ClusterSim, DiskIsFifoAcrossSlots) {
  // Two slots, two tasks: reads serialize on the disk, compute overlaps.
  // Task reads take 1 s each; cpu 10 s. Slot A: read [0,1], cpu [1,11].
  // Slot B: read [1,2], cpu [2,12]. Makespan 12 (not 11: the disk is FIFO).
  dsim::SimConfig cfg;
  cfg.num_nodes = 1;
  cfg.node.slots = 2;
  cfg.node.disk_mbps = 1.0;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{
      {.input_bytes = 1 << 20, .cpu_seconds = 10.0, .remote = false},
      {.input_bytes = 1 << 20, .cpu_seconds = 10.0, .remote = false}};
  const auto res = sim.run(tasks, fixed_assignment({0, 0}));
  EXPECT_DOUBLE_EQ(res.task_finish[0], 11.0);
  EXPECT_DOUBLE_EQ(res.task_finish[1], 12.0);
}

TEST(ClusterSim, RemoteReadBoundByNic) {
  dsim::SimConfig cfg;
  cfg.num_nodes = 1;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 100.0;
  cfg.node.nic_mbps = 10.0;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{
      {.input_bytes = 10 << 20, .cpu_seconds = 0.0, .remote = true}};
  const auto res = sim.run(tasks, fixed_assignment({0}));
  EXPECT_DOUBLE_EQ(res.task_finish[0], 1.0);  // 10 MiB at 10 MiB/s
  EXPECT_EQ(res.remote_reads, 1u);
}

TEST(ClusterSim, CpuSpeedScalesCompute) {
  dsim::SimConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1e9;  // negligible read time
  cfg.per_node = {cfg.node, cfg.node};
  cfg.per_node[1].cpu_speed = 4.0;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{
      {.input_bytes = 0, .cpu_seconds = 8.0, .remote = false},
      {.input_bytes = 0, .cpu_seconds = 8.0, .remote = false}};
  const auto res = sim.run(tasks, fixed_assignment({0, 1}));
  EXPECT_DOUBLE_EQ(res.task_finish[0], 8.0);
  EXPECT_DOUBLE_EQ(res.task_finish[1], 2.0);
}

TEST(ClusterSim, PullOrderFollowsSlotAvailability) {
  // One fast and one slow node; a global FIFO queue of 4 equal tasks. The
  // fast node should execute more of them.
  dsim::SimConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1e9;
  cfg.per_node = {cfg.node, cfg.node};
  cfg.per_node[0].cpu_speed = 3.0;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks(
      6, {.input_bytes = 0, .cpu_seconds = 3.0, .remote = false});
  std::size_t cursor = 0;
  const auto res = sim.run(tasks, [&](std::uint32_t) -> std::optional<std::size_t> {
    if (cursor >= tasks.size()) return std::nullopt;
    return cursor++;
  });
  int fast = 0;
  for (const auto n : res.task_node) fast += (n == 0);
  EXPECT_GE(fast, 4);
}

TEST(ClusterSim, UnservedTasksStayUnrun) {
  dsim::SimConfig cfg;
  cfg.num_nodes = 1;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks(
      3, {.input_bytes = 0, .cpu_seconds = 1.0, .remote = false});
  // Scheduler only hands out task 0.
  bool given = false;
  const auto res = sim.run(tasks, [&](std::uint32_t) -> std::optional<std::size_t> {
    if (given) return std::nullopt;
    given = true;
    return 0;
  });
  EXPECT_GT(res.task_finish[0], 0.0);
  EXPECT_DOUBLE_EQ(res.task_finish[1], 0.0);
  EXPECT_EQ(res.task_node[1], cfg.num_nodes);  // invalid marker
}

TEST(ClusterSim, SpeculationRescuesSlowNode) {
  // Node 1 is 100x slower; its task would finish at t = 800. Node 0 drains
  // its own queue by t = 2, goes idle, and launches a backup that wins at
  // t = 10. The loser is cancelled and its slot frees at the win time.
  dsim::SimConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1e9;  // negligible read time
  cfg.speculative = true;
  cfg.per_node = {cfg.node, cfg.node};
  cfg.per_node[1].cpu_speed = 0.01;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{
      {.input_bytes = 0, .cpu_seconds = 1.0, .remote = false},
      {.input_bytes = 0, .cpu_seconds = 1.0, .remote = false},
      {.input_bytes = 0, .cpu_seconds = 8.0, .remote = false}};
  const auto res = sim.run(tasks, fixed_assignment({0, 0, 1}));
  EXPECT_EQ(res.speculative_launched, 1u);
  EXPECT_EQ(res.speculative_wins, 1u);
  EXPECT_EQ(res.task_node[2], 0u);  // the backup's node won
  EXPECT_DOUBLE_EQ(res.task_finish[2], 10.0);
  EXPECT_DOUBLE_EQ(res.makespan, 10.0);
  EXPECT_DOUBLE_EQ(res.node_finish[1], 10.0);  // loser freed at the win
}

TEST(ClusterSim, SpeculationOffLeavesStragglerUncontested) {
  dsim::SimConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1e9;
  cfg.per_node = {cfg.node, cfg.node};
  cfg.per_node[1].cpu_speed = 0.01;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks{
      {.input_bytes = 0, .cpu_seconds = 1.0, .remote = false},
      {.input_bytes = 0, .cpu_seconds = 1.0, .remote = false},
      {.input_bytes = 0, .cpu_seconds = 8.0, .remote = false}};
  const auto res = sim.run(tasks, fixed_assignment({0, 0, 1}));
  EXPECT_EQ(res.speculative_launched, 0u);
  EXPECT_EQ(res.task_node[2], 1u);
  EXPECT_DOUBLE_EQ(res.makespan, 800.0);
}

TEST(ClusterSim, NoPointlessBackupsOnHomogeneousCluster) {
  // A backup must beat the running attempt strictly; on equal nodes with
  // equal tasks there is never a strictly earlier projected finish, so
  // enabling speculation changes nothing.
  dsim::SimConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.slots = 1;
  cfg.node.disk_mbps = 1e9;
  cfg.speculative = true;
  dsim::ClusterSim sim(cfg);
  const std::vector<dsim::SimTask> tasks(
      2, {.input_bytes = 0, .cpu_seconds = 5.0, .remote = false});
  const auto res = sim.run(tasks, fixed_assignment({0, 1}));
  EXPECT_EQ(res.speculative_launched, 0u);
  EXPECT_DOUBLE_EQ(res.task_finish[0], 5.0);
  EXPECT_DOUBLE_EQ(res.task_finish[1], 5.0);
}

TEST(ClusterSim, RejectsBadConfigs) {
  dsim::SimConfig bad;
  bad.num_nodes = 0;
  EXPECT_THROW(dsim::ClusterSim{bad}, std::invalid_argument);
  bad.num_nodes = 2;
  bad.per_node.resize(1);
  EXPECT_THROW(dsim::ClusterSim{bad}, std::invalid_argument);
  bad.per_node.clear();
  bad.node.slots = 0;
  EXPECT_THROW(dsim::ClusterSim{bad}, std::invalid_argument);
}

// ---- selection bridge over real schedulers ----

namespace {
struct SimFixture {
  datanet::core::ExperimentConfig cfg = [] {
    datanet::core::ExperimentConfig c;
    c.num_nodes = 8;
    c.block_size = 16 * 1024;
    c.seed = 41;
    return c;
  }();
  datanet::core::StoredDataset ds =
      datanet::core::make_movie_dataset(cfg, 64, 300);
};

// Timing-only selection through the runtime's event backend: the modern
// replacement for the old simulate_selection shim.
struct SimSelection {
  datanet::core::SelectionResult result;
  dsim::SimResult sim;
};

SimSelection sim_selection(const SimFixture& f,
                           const datanet::graph::BipartiteGraph& graph,
                           datanet::scheduler::TaskScheduler& sched,
                           const dsim::SelectionSimOptions& opt) {
  dsim::EventSimBackend backend(*f.ds.dfs, opt);
  datanet::core::DirectReadPolicy read(*f.ds.dfs, f.cfg.remote_read_penalty);
  datanet::core::NoFaults faults;
  const datanet::core::SelectionRuntime runtime(read, faults, backend);
  auto result = runtime.run_graph(*f.ds.dfs, graph, "sim", sched, f.cfg,
                                  /*materialize=*/false);
  return {std::move(result), backend.last_sim()};
}
}  // namespace

TEST(SelectionSim, AllBlocksExecuted) {
  SimFixture f;
  const datanet::core::DataNet net(*f.ds.dfs, f.ds.path, {.alpha = 0.3});
  const auto graph = net.scheduling_graph(f.ds.hot_keys[0]);
  datanet::scheduler::DataNetScheduler sched;
  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = 8;
  const auto report = sim_selection(f, graph, sched, opt);
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    EXPECT_GT(report.sim.task_finish[j], 0.0);
    EXPECT_LT(report.sim.task_node[j], 8u);
  }
  // Timing-only runs don't materialize data; the scheduler's byte
  // assignment still must cover every block's weight.
  const auto total =
      std::accumulate(report.result.assignment.node_load.begin(),
                      report.result.assignment.node_load.end(), 0ull);
  EXPECT_EQ(total, graph.total_weight());
  EXPECT_GT(report.sim.makespan, 0.0);
}

TEST(SelectionSim, DataNetBalancesUnderEventTiming) {
  // The headline conclusion must hold under the event-driven backend too.
  SimFixture f;
  const datanet::core::DataNet net(*f.ds.dfs, f.ds.path, {.alpha = 0.3});
  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = 8;

  // For byte-load comparison the baseline needs the true weights: reuse the
  // DataNet candidate graph for both schedulers.
  const auto graph = net.scheduling_graph(f.ds.hot_keys[0]);
  datanet::scheduler::LocalityScheduler base(7);
  const auto r_loc = sim_selection(f, graph, base, opt);
  datanet::scheduler::DataNetScheduler dn;
  const auto r_dn = sim_selection(f, graph, dn, opt);

  const auto cv = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return datanet::stats::summarize(d).coeff_variation();
  };
  EXPECT_LT(cv(r_dn.result.assignment.node_load),
            cv(r_loc.result.assignment.node_load));
}

TEST(SelectionSim, MostReadsLocalWithLocalityScheduler) {
  SimFixture f;
  const datanet::core::DataNet net(*f.ds.dfs, f.ds.path, {.alpha = 0.3});
  const auto graph = net.baseline_graph();
  datanet::scheduler::LocalityScheduler sched(7);
  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = 8;
  const auto report = sim_selection(f, graph, sched, opt);
  EXPECT_LT(report.sim.remote_reads, graph.num_blocks() / 3);
}

TEST(SelectionSim, RejectsNodeMismatch) {
  SimFixture f;
  const datanet::core::DataNet net(*f.ds.dfs, f.ds.path, {.alpha = 0.3});
  const auto graph = net.baseline_graph();
  datanet::scheduler::LocalityScheduler sched(7);
  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = 4;  // dataset cluster is 8 nodes
  EXPECT_THROW(sim_selection(f, graph, sched, opt), std::invalid_argument);
}

// ---- full job simulation (map + shuffle + reduce) ----

#include "sim/job_sim.hpp"

namespace {
dsim::JobSimOptions job_opts(std::uint32_t nodes) {
  dsim::JobSimOptions o;
  o.cluster.num_nodes = nodes;
  o.cluster.node.slots = 2;
  o.cluster.node.disk_mbps = 100.0;
  o.cluster.node.nic_mbps = 100.0;
  o.map_cpu_seconds_per_mib = 1.0;
  o.output_ratio = 0.1;
  o.num_reducers = 4;
  return o;
}
}  // namespace

TEST(JobSim, BalancedInputBalancedFinish) {
  const std::vector<std::uint64_t> bytes(8, 8 << 20);
  const auto r = dsim::simulate_analysis_job(bytes, job_opts(8));
  // All nodes identical -> identical map finishes, tight shuffle span.
  double mn = 1e18, mx = 0;
  for (const auto t : r.map.node_finish) {
    mn = std::min(mn, t);
    mx = std::max(mx, t);
  }
  EXPECT_NEAR(mn, mx, 1e-9);
  EXPECT_GT(r.makespan, r.map_phase);
  for (const auto t : r.reduce_finish) EXPECT_GE(t + 1e-12, r.shuffle_finish[0]);
}

TEST(JobSim, SkewedInputStretchesShuffle) {
  std::vector<std::uint64_t> balanced(8, 8 << 20);
  std::vector<std::uint64_t> skewed(8, 2 << 20);
  skewed[0] = balanced[0] * 8 - 7ull * (2 << 20);  // same total, one hot node
  std::uint64_t tb = 0, ts = 0;
  for (auto b : balanced) tb += b;
  for (auto s : skewed) ts += s;
  ASSERT_EQ(tb, ts);
  const auto rb = dsim::simulate_analysis_job(balanced, job_opts(8));
  const auto rs = dsim::simulate_analysis_job(skewed, job_opts(8));
  EXPECT_GT(rs.map_phase, 1.5 * rb.map_phase);
  EXPECT_GT(rs.shuffle_span(), 1.5 * rb.shuffle_span());
  EXPECT_GT(rs.makespan, rb.makespan);
}

TEST(JobSim, ReducerPlacementReducesTransfers) {
  // All data on node 0: hosting every reducer there eliminates transfers.
  std::vector<std::uint64_t> bytes(4, 0);
  bytes[0] = 16 << 20;
  auto opts = job_opts(4);
  const auto spread = dsim::simulate_analysis_job(bytes, opts);
  const auto colocated = dsim::simulate_analysis_job(
      bytes, opts, std::vector<std::uint32_t>(opts.num_reducers, 0));
  // Colocated shuffle completes with the map (no inbound transfers).
  double worst_colo = 0, worst_spread = 0;
  for (const auto t : colocated.shuffle_finish) worst_colo = std::max(worst_colo, t);
  for (const auto t : spread.shuffle_finish) worst_spread = std::max(worst_spread, t);
  EXPECT_LT(worst_colo, worst_spread);
  EXPECT_NEAR(worst_colo, colocated.map_phase, 1e-9);
}

TEST(JobSim, RejectsBadArgs) {
  auto opts = job_opts(4);
  EXPECT_THROW(
      dsim::simulate_analysis_job(std::vector<std::uint64_t>(3, 1), opts),
      std::invalid_argument);
  opts.num_reducers = 0;
  EXPECT_THROW(
      dsim::simulate_analysis_job(std::vector<std::uint64_t>(4, 1), opts),
      std::invalid_argument);
  opts.num_reducers = 2;
  EXPECT_THROW(dsim::simulate_analysis_job(std::vector<std::uint64_t>(4, 1),
                                           opts, {9, 9}),
               std::invalid_argument);
}
