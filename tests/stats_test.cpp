// Tests for the statistics substrate: incomplete gamma, GammaDistribution
// (the Section II-B workload model), descriptive stats, Zipf, histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/gamma.hpp"
#include "stats/histogram.hpp"
#include "stats/zipf.hpp"

namespace ds = datanet::stats;

// ---- regularized incomplete gamma ----

TEST(IncGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(ds::regularized_gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ds::regularized_gamma_q(1.0, 0.0), 1.0);
}

TEST(IncGamma, ExponentialSpecialCase) {
  // For a = 1, P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(ds::regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(IncGamma, ChiSquareKnownValue) {
  // Chi-square with 2k dof: P(k, x/2). chi2 CDF at median ~ 0.5.
  // P(0.5, 0.2275) ≈ 0.5 (chi2_1 median ≈ 0.4549).
  EXPECT_NEAR(ds::regularized_gamma_p(0.5, 0.45494 / 2.0), 0.5, 1e-4);
}

TEST(IncGamma, PPlusQIsOne) {
  for (double a : {0.3, 1.2, 4.5, 20.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 50.0}) {
      EXPECT_NEAR(ds::regularized_gamma_p(a, x) + ds::regularized_gamma_q(a, x),
                  1.0, 1e-12);
    }
  }
}

TEST(IncGamma, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.5) {
    const double p = ds::regularized_gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(IncGamma, RejectsBadArgs) {
  EXPECT_THROW((void)ds::regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ds::regularized_gamma_p(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)ds::regularized_gamma_q(-2.0, 1.0), std::invalid_argument);
}

// ---- GammaDistribution ----

TEST(GammaDist, MomentsMatchParameters) {
  const ds::GammaDistribution g(1.2, 7.0);  // the paper's Figure 2 parameters
  EXPECT_DOUBLE_EQ(g.mean(), 8.4);
  EXPECT_DOUBLE_EQ(g.variance(), 1.2 * 49.0);
}

TEST(GammaDist, RejectsBadParameters) {
  EXPECT_THROW(ds::GammaDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ds::GammaDistribution(1.0, -1.0), std::invalid_argument);
}

TEST(GammaDist, PdfIntegratesToCdf) {
  const ds::GammaDistribution g(2.5, 3.0);
  // Trapezoidal integration of the pdf should match the cdf.
  double integral = 0.0;
  const double dx = 0.01;
  double prev = g.pdf(0.0);
  for (double x = dx; x <= 15.0 + 1e-12; x += dx) {
    const double cur = g.pdf(x);
    integral += 0.5 * (prev + cur) * dx;
    prev = cur;
  }
  EXPECT_NEAR(integral, g.cdf(15.0), 1e-4);
}

TEST(GammaDist, PdfZeroForNegative) {
  const ds::GammaDistribution g(2.0, 1.0);
  EXPECT_DOUBLE_EQ(g.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.cdf(-1.0), 0.0);
}

TEST(GammaDist, ExponentialCdfSpecialCase) {
  const ds::GammaDistribution g(1.0, 2.0);  // Exp(mean 2)
  EXPECT_NEAR(g.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(GammaDist, QuantileInvertsCdf) {
  const ds::GammaDistribution g(1.2, 7.0);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9);
  }
}

TEST(GammaDist, QuantileRejectsBadP) {
  const ds::GammaDistribution g(1.0, 1.0);
  EXPECT_THROW((void)g.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)g.quantile(1.0), std::invalid_argument);
}

TEST(GammaDist, SampleMeanAndVariance) {
  const ds::GammaDistribution g(1.2, 7.0);
  datanet::common::Rng rng(99);
  constexpr int kN = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = g.sample(rng);
    EXPECT_GE(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, g.mean(), 0.1);
  EXPECT_NEAR(var, g.variance(), 2.0);
}

TEST(GammaDist, SampleSmallShape) {
  const ds::GammaDistribution g(0.5, 2.0);
  datanet::common::Rng rng(123);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += g.sample(rng);
  EXPECT_NEAR(sum / kN, 1.0, 0.05);
}

TEST(GammaDist, SampleMatchesCdfKS) {
  // Crude Kolmogorov–Smirnov check: empirical CDF within 2% of analytic.
  const ds::GammaDistribution g(2.0, 3.0);
  datanet::common::Rng rng(7);
  constexpr int kN = 20000;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = g.sample(rng);
  std::sort(xs.begin(), xs.end());
  double max_dev = 0.0;
  for (int i = 0; i < kN; i += 100) {
    const double emp = static_cast<double>(i) / kN;
    max_dev = std::max(max_dev, std::fabs(emp - g.cdf(xs[i])));
  }
  EXPECT_LT(max_dev, 0.02);
}

// ---- node workload distribution (Section II-B) ----

TEST(NodeWorkload, ShapeScalesWithBlocksPerNode) {
  const auto z = ds::node_workload_distribution(1.2, 7.0, 512, 32);
  EXPECT_DOUBLE_EQ(z.shape(), 1.2 * 512 / 32);
  EXPECT_DOUBLE_EQ(z.scale(), 7.0);
  // E(Z) = nk\theta/m, independent decomposition sanity.
  EXPECT_DOUBLE_EQ(z.mean(), 512 * 1.2 * 7.0 / 32);
}

TEST(NodeWorkload, ImbalanceProbabilityGrowsWithClusterSize) {
  // The core claim of Figure 2: P(Z < E(Z)/2) increases with m.
  double prev = 0.0;
  for (std::uint64_t m : {2, 8, 32, 128, 512}) {
    const auto z = ds::node_workload_distribution(1.2, 7.0, 512, m);
    const double p = z.cdf(0.5 * z.mean());
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(NodeWorkload, OverloadProbabilityGrowsWithClusterSize) {
  double prev = 0.0;
  for (std::uint64_t m : {2, 8, 32, 128, 512}) {
    const auto z = ds::node_workload_distribution(1.2, 7.0, 512, m);
    const double p = z.sf(2.0 * z.mean());
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(NodeWorkload, PaperExpectedCounts) {
  // Section II-B example: m = 128, n = 512, k = 1.2, theta = 7. The paper
  // quotes "3.9 and 1.5" for nodes below E/2 and E/3 and "4.0" above 2E.
  // Exact Gamma(nk/m, theta) arithmetic gives 3.9 nodes below E/3 and 4.0
  // above 2E (the paper's E/2 pairing appears shifted by one threshold); we
  // assert the values our model actually produces and the qualitative
  // ordering the section argues.
  const auto z = ds::node_workload_distribution(1.2, 7.0, 512, 128);
  EXPECT_NEAR(128.0 * z.cdf(z.mean() / 3.0), 3.9, 0.5);
  EXPECT_NEAR(128.0 * z.sf(2.0 * z.mean()), 4.0, 0.5);
  EXPECT_GT(128.0 * z.cdf(z.mean() / 2.0), 128.0 * z.cdf(z.mean() / 3.0));
  // "some nodes will have a workload 4 to 6 times greater than others":
  // nodes above 2E exist alongside nodes below E/3 => ratio >= 6.
  EXPECT_GT(128.0 * z.cdf(z.mean() / 3.0), 1.0);
  EXPECT_GT(128.0 * z.sf(2.0 * z.mean()), 1.0);
}

TEST(NodeWorkload, RejectsZeroNodes) {
  EXPECT_THROW((void)ds::node_workload_distribution(1.0, 1.0, 10, 0),
               std::invalid_argument);
}

// ---- descriptive ----

TEST(Descriptive, EmptyInput) {
  const auto s = ds::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Descriptive, SingleValue) {
  const double xs[] = {5.0};
  const auto s = ds::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Descriptive, KnownSeries) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = ds::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-sd example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Descriptive, ImbalanceRatios) {
  const double xs[] = {1.0, 2.0, 3.0};
  const auto s = ds::summarize(xs);
  EXPECT_DOUBLE_EQ(s.max_over_mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.min_over_mean(), 0.5);
  EXPECT_GT(s.coeff_variation(), 0.0);
}

TEST(Descriptive, PercentileEndpointsAndMid) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ds::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ds::percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ds::percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(ds::percentile(xs, 0.25), 2.0);
}

TEST(Descriptive, PercentileRejectsBadArgs) {
  EXPECT_THROW((void)ds::percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)ds::percentile({1.0}, 1.5), std::invalid_argument);
}

// ---- zipf ----

TEST(Zipf, ProbabilitiesSumToOne) {
  const ds::ZipfSampler z(100, 1.1);
  double total = 0.0;
  for (std::uint64_t r = 0; r < 100; ++r) total += z.probability(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostLikely) {
  const ds::ZipfSampler z(100, 1.1);
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(1), z.probability(50));
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ds::ZipfSampler z(10, 0.0);
  for (std::uint64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(z.probability(r), 0.1, 1e-12);
  }
}

TEST(Zipf, SamplesFollowDistribution) {
  const ds::ZipfSampler z(50, 1.0);
  datanet::common::Rng rng(31);
  std::vector<std::uint64_t> counts(50, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::uint64_t r : {0ull, 1ull, 5ull, 20ull}) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, z.probability(r), 0.005);
  }
}

TEST(Zipf, SampleWithinRange) {
  const ds::ZipfSampler z(5, 2.0);
  datanet::common::Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(rng), 5u);
}

TEST(Zipf, RejectsBadArgs) {
  EXPECT_THROW(ds::ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ds::ZipfSampler(10, -1.0), std::invalid_argument);
  const ds::ZipfSampler z(3, 1.0);
  EXPECT_THROW((void)z.probability(3), std::out_of_range);
}

// ---- histogram ----

TEST(Histogram, BucketIndexing) {
  ds::Histogram h({1.0, 2.0, 5.0});
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket_index(1.9), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 2u);
  EXPECT_EQ(h.bucket_index(100.0), 3u);
  EXPECT_EQ(h.num_buckets(), 4u);
}

TEST(Histogram, CountsAccumulate) {
  ds::Histogram h({10.0});
  h.add(5.0);
  h.add(5.0, 3);
  h.add(20.0);
  EXPECT_EQ(h.count(0), 4u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsUnsortedEdges) {
  EXPECT_THROW(ds::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(ds::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, FibonacciEdges) {
  const auto edges = ds::fibonacci_edges(1024.0, 34.0 * 1024.0);
  // 1, 2, 3, 5, 8, 13, 21, 34 (scaled by 1 KiB)
  ASSERT_EQ(edges.size(), 8u);
  EXPECT_DOUBLE_EQ(edges[0], 1024.0);
  EXPECT_DOUBLE_EQ(edges[3], 5.0 * 1024);
  EXPECT_DOUBLE_EQ(edges[7], 34.0 * 1024);
}

TEST(Histogram, FibonacciEdgesRejectBad) {
  EXPECT_THROW(ds::fibonacci_edges(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ds::fibonacci_edges(10.0, 5.0), std::invalid_argument);
}

// ---- chi-square goodness of fit ----

#include "common/rng.hpp"
#include "stats/fit.hpp"
#include "stats/goodness_of_fit.hpp"

TEST(ChiSquared, SurvivalKnownValues) {
  // chi2_1: P(X >= 3.841) = 0.05; chi2_5: P(X >= 11.07) = 0.05.
  EXPECT_NEAR(ds::chi_squared_sf(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(ds::chi_squared_sf(11.07, 5), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(ds::chi_squared_sf(0.0, 3), 1.0);
  EXPECT_THROW((void)ds::chi_squared_sf(1.0, 0), std::invalid_argument);
}

TEST(Gof, AcceptsTrueModel) {
  const ds::GammaDistribution g(1.2, 7.0);
  datanet::common::Rng rng(31);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = g.sample(rng);
  const auto fit = ds::fit_gamma_mle(xs);
  const ds::GammaDistribution fitted(fit.shape, fit.scale);
  const auto r = ds::chi_squared_gof(xs, fitted);
  EXPECT_GT(r.p_value, 0.01);  // the true model should rarely be rejected
  EXPECT_EQ(r.dof, r.bins - 3);
}

TEST(Gof, RejectsWrongModel) {
  // Exponential-ish samples tested against a sharply peaked Gamma.
  const ds::GammaDistribution true_model(1.0, 5.0);
  datanet::common::Rng rng(37);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = true_model.sample(rng);
  const ds::GammaDistribution wrong(20.0, 0.25);  // same-ish mean, wrong shape
  const auto r = ds::chi_squared_gof(xs, wrong, 0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Gof, RejectsTooFewSamples) {
  const ds::GammaDistribution g(1.0, 1.0);
  const std::vector<double> xs(10, 1.0);
  EXPECT_THROW((void)ds::chi_squared_gof(xs, g), std::invalid_argument);
}
