// Tests for the mini-MapReduce engine: real execution correctness (output
// equals a serial computation), the deterministic simulated clock, combiner
// semantics, and the paper's shuffle-phase timing model.

#include <gtest/gtest.h>

#include <charconv>
#include <map>

#include "mapred/engine.hpp"
#include "workload/record.hpp"

namespace dm = datanet::mapred;
namespace dw = datanet::workload;

namespace {

// Toy job: count records per key.
class KeyCountMapper final : public dm::Mapper {
 public:
  void map(const dw::RecordView& r, dm::Emitter& out) override {
    out.emit(std::string(r.key), "1");
  }
};

class SumReducer final : public dm::Reducer {
 public:
  void reduce(const dm::Key& key, std::span<const dm::Value> values,
              dm::Emitter& out) override {
    std::uint64_t sum = 0;
    for (const auto& v : values) {
      std::uint64_t x = 0;
      std::from_chars(v.data(), v.data() + v.size(), x);
      sum += x;
    }
    out.emit(key, std::to_string(sum));
  }
};

dm::Job key_count_job(bool combiner = true) {
  dm::Job job;
  job.config.name = "KeyCount";
  job.config.num_reducers = 4;
  job.mapper_factory = [] { return std::make_unique<KeyCountMapper>(); };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  if (combiner) {
    job.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  }
  return job;
}

std::string make_block(std::initializer_list<std::pair<const char*, int>> keys) {
  std::string data;
  std::uint64_t ts = 0;
  for (const auto& [key, count] : keys) {
    for (int i = 0; i < count; ++i) {
      data += std::to_string(ts++) + "\t" + key + "\tpayload text\n";
    }
  }
  return data;
}

}  // namespace

// ---- cost model ----

TEST(CostModel, MapSecondsComposition) {
  dm::CostModel c;
  c.io_s_per_mib = 1.0;
  c.cpu_s_per_mib = 2.0;
  c.cpu_us_per_record = 0.0;
  c.task_overhead_s = 0.5;
  c.time_scale = 1.0;
  EXPECT_DOUBLE_EQ(c.map_seconds(1 << 20, 0), 3.5);
}

TEST(CostModel, TimeScaleMultipliesDataCostsOnly) {
  dm::CostModel c;
  c.io_s_per_mib = 1.0;
  c.cpu_s_per_mib = 0.0;
  c.cpu_us_per_record = 0.0;
  c.task_overhead_s = 0.25;  // fixed startup is NOT scaled
  c.time_scale = 4.0;
  EXPECT_DOUBLE_EQ(c.map_seconds(1 << 20, 0), 4.25);
  // Shuffle/reduce act on combiner output (key-cardinality bound), so they
  // are charged on actual bytes without the scale factor.
  EXPECT_DOUBLE_EQ(c.transfer_seconds(1 << 20), c.net_s_per_mib);
  EXPECT_DOUBLE_EQ(c.reduce_seconds(1 << 20), c.reduce_s_per_mib);
}

TEST(CostModel, PerRecordCharge) {
  dm::CostModel c{};
  c.io_s_per_mib = 0.0;
  c.cpu_s_per_mib = 0.0;
  c.cpu_us_per_record = 2.0;
  c.task_overhead_s = 0.0;
  EXPECT_DOUBLE_EQ(c.map_seconds(0, 1'000'000), 2.0);
}

// ---- engine correctness ----

TEST(Engine, CountsMatchSerialTruth) {
  const auto b1 = make_block({{"a", 10}, {"b", 5}});
  const auto b2 = make_block({{"a", 3}, {"c", 7}});
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(
      key_count_job(), {{.node = 0, .data = b1, .charged_bytes = 0},
                        {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("a"), "13");
  EXPECT_EQ(report.output.at("b"), "5");
  EXPECT_EQ(report.output.at("c"), "7");
  EXPECT_EQ(report.input_records, 25u);
}

TEST(Engine, CombinerDoesNotChangeOutput) {
  const auto b1 = make_block({{"x", 20}, {"y", 4}});
  const auto b2 = make_block({{"x", 1}, {"z", 9}});
  dm::Engine engine({.num_nodes = 2});
  const std::vector<dm::InputSplit> splits{{.node = 0, .data = b1, .charged_bytes = 0},
                                           {.node = 1, .data = b2, .charged_bytes = 0}};
  const auto with = engine.run(key_count_job(true), splits);
  const auto without = engine.run(key_count_job(false), splits);
  EXPECT_EQ(with.output, without.output);
  // But the combiner shrinks the shuffle.
  EXPECT_LT(with.shuffle_bytes, without.shuffle_bytes);
  EXPECT_LT(with.map_output_pairs, without.map_output_pairs);
}

TEST(Engine, EmptyInputProducesEmptyOutput) {
  dm::Engine engine({.num_nodes = 1});
  const auto report = engine.run(key_count_job(), {});
  EXPECT_TRUE(report.output.empty());
  EXPECT_DOUBLE_EQ(report.total_seconds, 0.0);
}

TEST(Engine, SkippedLinesCounted) {
  const std::string bad = "garbage line\n1\ta\tok\nmore garbage\n";
  dm::Engine engine({.num_nodes = 1});
  const auto report =
      engine.run(key_count_job(), {{.node = 0, .data = bad, .charged_bytes = 0}});
  EXPECT_EQ(report.skipped_lines, 2u);
  EXPECT_EQ(report.input_records, 1u);
}

TEST(Engine, DeterministicOutputAcrossThreadCounts) {
  const auto b1 = make_block({{"a", 50}, {"b", 30}});
  const auto b2 = make_block({{"b", 20}, {"c", 40}});
  const auto b3 = make_block({{"a", 5}, {"c", 5}});
  const std::vector<dm::InputSplit> splits{{.node = 0, .data = b1, .charged_bytes = 0},
                                           {.node = 1, .data = b2, .charged_bytes = 0},
                                           {.node = 2, .data = b3, .charged_bytes = 0}};
  dm::Engine e1({.num_nodes = 3, .slots_per_node = 2, .execution_threads = 1});
  dm::Engine e8({.num_nodes = 3, .slots_per_node = 2, .execution_threads = 8});
  const auto r1 = e1.run(key_count_job(), splits);
  const auto r8 = e8.run(key_count_job(), splits);
  EXPECT_EQ(r1.output, r8.output);
  EXPECT_DOUBLE_EQ(r1.map_phase_seconds, r8.map_phase_seconds);
  EXPECT_DOUBLE_EQ(r1.total_seconds, r8.total_seconds);
}

TEST(Engine, RejectsBadConfigs) {
  EXPECT_THROW((void)dm::Engine({.num_nodes = 0}), std::invalid_argument);
  EXPECT_THROW((void)dm::Engine({.num_nodes = 1, .slots_per_node = 0}),
               std::invalid_argument);
  dm::Engine engine({.num_nodes = 1});
  dm::Job no_mapper = key_count_job();
  no_mapper.mapper_factory = nullptr;
  EXPECT_THROW(engine.run(no_mapper, {}), std::invalid_argument);
  dm::Job zero_reducers = key_count_job();
  zero_reducers.config.num_reducers = 0;
  EXPECT_THROW(engine.run(zero_reducers, {}), std::invalid_argument);
  const auto b = make_block({{"a", 1}});
  EXPECT_THROW(
      engine.run(key_count_job(), {{.node = 5, .data = b, .charged_bytes = 0}}),
      std::invalid_argument);
}

// ---- simulated timing ----

TEST(Timing, NodeMapTimeIsSlotSchedule) {
  // 4 equal tasks on one node with 2 slots -> node time = 2 task durations.
  const auto b = make_block({{"a", 10}});
  dm::Job job = key_count_job();
  job.config.cost = {};
  job.config.cost.io_s_per_mib = 0.0;
  job.config.cost.cpu_s_per_mib = 0.0;
  job.config.cost.cpu_us_per_record = 0.0;
  job.config.cost.task_overhead_s = 1.0;
  dm::Engine engine({.num_nodes = 1, .slots_per_node = 2});
  const std::vector<dm::InputSplit> splits(
      4, {.node = 0, .data = b, .charged_bytes = 0});
  const auto report = engine.run(job, splits);
  EXPECT_DOUBLE_EQ(report.node_map_seconds[0], 2.0);
  EXPECT_DOUBLE_EQ(report.map_phase_seconds, 2.0);
  EXPECT_DOUBLE_EQ(report.first_map_finish_seconds, 1.0);
}

TEST(Timing, MapPhaseIsMaxOverNodes) {
  const auto b = make_block({{"a", 10}});
  dm::Job job = key_count_job();
  job.config.cost = {};
  job.config.cost.task_overhead_s = 1.0;
  job.config.cost.io_s_per_mib = 0.0;
  job.config.cost.cpu_s_per_mib = 0.0;
  job.config.cost.cpu_us_per_record = 0.0;
  dm::Engine engine({.num_nodes = 2, .slots_per_node = 1});
  // Node 0 gets 3 tasks, node 1 gets 1.
  const std::vector<dm::InputSplit> splits{{.node = 0, .data = b, .charged_bytes = 0},
                                           {.node = 0, .data = b, .charged_bytes = 0},
                                           {.node = 0, .data = b, .charged_bytes = 0},
                                           {.node = 1, .data = b, .charged_bytes = 0}};
  const auto report = engine.run(job, splits);
  EXPECT_DOUBLE_EQ(report.node_map_seconds[0], 3.0);
  EXPECT_DOUBLE_EQ(report.node_map_seconds[1], 1.0);
  EXPECT_DOUBLE_EQ(report.map_phase_seconds, 3.0);
}

TEST(Timing, ShuffleStretchesWithImbalance) {
  // Same total work, balanced vs imbalanced placement: the imbalanced run
  // must show a longer shuffle phase (the Fig. 7 mechanism).
  const auto b = make_block({{"k", 40}});
  dm::Job job = key_count_job();
  job.config.cost.task_overhead_s = 1.0;
  dm::Engine engine({.num_nodes = 4, .slots_per_node = 1});

  std::vector<dm::InputSplit> balanced, skewed;
  for (int i = 0; i < 8; ++i) {
    balanced.push_back({.node = static_cast<std::uint32_t>(i % 4),
                        .data = b,
                        .charged_bytes = 0});
    skewed.push_back({.node = 0, .data = b, .charged_bytes = 0});
  }
  const auto rb = engine.run(job, balanced);
  const auto rs = engine.run(job, skewed);
  EXPECT_EQ(rb.output, rs.output);
  EXPECT_GT(rs.shuffle_phase_seconds, 2.0 * rb.shuffle_phase_seconds);
  EXPECT_GT(rs.total_seconds, rb.total_seconds);
}

TEST(Timing, ChargedBytesOverrideData) {
  const auto b = make_block({{"a", 100}});
  dm::Job job = key_count_job();
  job.config.cost = {};
  job.config.cost.io_s_per_mib = 1.0;
  job.config.cost.cpu_s_per_mib = 0.0;
  job.config.cost.cpu_us_per_record = 0.0;
  job.config.cost.task_overhead_s = 0.0;
  dm::Engine engine({.num_nodes = 1, .slots_per_node = 1});
  const auto normal =
      engine.run(job, {{.node = 0, .data = b, .charged_bytes = 0}});
  const auto penalized =
      engine.run(job, {{.node = 0, .data = b, .charged_bytes = 2 * b.size()}});
  EXPECT_NEAR(penalized.map_phase_seconds, 2.0 * normal.map_phase_seconds, 1e-12);
}

TEST(Timing, TaskTimingsConsistent) {
  const auto b = make_block({{"a", 20}});
  dm::Engine engine({.num_nodes = 2, .slots_per_node = 2});
  const std::vector<dm::InputSplit> splits(
      6, {.node = 0, .data = b, .charged_bytes = 0});
  const auto report = engine.run(key_count_job(), splits);
  ASSERT_EQ(report.map_tasks.size(), 6u);
  for (const auto& t : report.map_tasks) {
    EXPECT_GE(t.finish, t.start);
    EXPECT_LE(t.finish, report.map_phase_seconds + 1e-12);
  }
}

TEST(Timing, ReduceAndShuffleSizedByPartitions) {
  const auto b1 = make_block({{"a", 30}});
  dm::Engine engine({.num_nodes = 1});
  dm::Job job = key_count_job();
  job.config.num_reducers = 8;
  const auto report =
      engine.run(job, {{.node = 0, .data = b1, .charged_bytes = 0}});
  EXPECT_EQ(report.shuffle_task_seconds.size(), 8u);
  EXPECT_EQ(report.reduce_task_seconds.size(), 8u);
  // Exactly one key => exactly one nonzero partition.
  int nonzero = 0;
  for (const auto r : report.reduce_task_seconds) nonzero += (r > 0.0);
  EXPECT_EQ(nonzero, 1);
}

// ---- named counters ----

namespace {
class CountingMapper final : public dm::Mapper {
 public:
  void map(const dw::RecordView& r, dm::Emitter& out) override {
    out.count("records_seen");
    if (r.key == "a") out.count("a_records", 2);
    out.emit(std::string(r.key), "1");
  }
};
class CountingReducer final : public dm::Reducer {
 public:
  void reduce(const dm::Key& key, std::span<const dm::Value> values,
              dm::Emitter& out) override {
    out.count("keys_reduced");
    out.emit(key, std::to_string(values.size()));
  }
};
}  // namespace

TEST(Engine, DeterministicShuffleAndReduceAcrossThreadCounts) {
  // Shuffle-heavy job: many distinct keys across many splits, >= 8 reducers,
  // so the parallel partition-gather and reduce stages actually fan out.
  // Everything observable must be bit-identical at 1 and 8 threads.
  std::vector<std::string> blocks;
  for (int s = 0; s < 6; ++s) {
    std::string data;
    for (int i = 0; i < 400; ++i) {
      data += std::to_string(i) + "\tkey_" +
              std::to_string((s * 131 + i * 7) % 97) + "\tpayload\n";
    }
    blocks.push_back(std::move(data));
  }
  std::vector<dm::InputSplit> splits;
  for (int s = 0; s < 6; ++s) {
    splits.push_back({.node = static_cast<std::uint32_t>(s % 3),
                      .data = blocks[s],
                      .charged_bytes = 0});
  }
  dm::Job job;
  job.config.num_reducers = 11;
  job.mapper_factory = [] { return std::make_unique<CountingMapper>(); };
  job.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  dm::Engine e1({.num_nodes = 3, .slots_per_node = 2, .execution_threads = 1});
  dm::Engine e8({.num_nodes = 3, .slots_per_node = 2, .execution_threads = 8});
  const auto r1 = e1.run(job, splits);
  const auto r8 = e8.run(job, splits);
  EXPECT_EQ(r1.output, r8.output);
  EXPECT_EQ(r1.counters, r8.counters);
  EXPECT_EQ(r1.map_output_pairs, r8.map_output_pairs);
  EXPECT_EQ(r1.shuffle_bytes, r8.shuffle_bytes);
  EXPECT_EQ(r1.input_records, r8.input_records);
  EXPECT_DOUBLE_EQ(r1.total_seconds, r8.total_seconds);
  EXPECT_EQ(r1.shuffle_task_seconds, r8.shuffle_task_seconds);
  EXPECT_EQ(r1.reduce_task_seconds, r8.reduce_task_seconds);
}

TEST(Counters, MergedAcrossTasksAndPhases) {
  const auto b1 = make_block({{"a", 3}, {"b", 2}});
  const auto b2 = make_block({{"a", 1}, {"c", 4}});
  dm::Job job;
  job.config.num_reducers = 4;
  job.mapper_factory = [] { return std::make_unique<CountingMapper>(); };
  job.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(job, {{.node = 0, .data = b1, .charged_bytes = 0},
                                       {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.counters.at("records_seen"), 10u);
  EXPECT_EQ(report.counters.at("a_records"), 8u);  // 4 'a' records x 2
  EXPECT_EQ(report.counters.at("keys_reduced"), 3u);  // a, b, c
}

TEST(Counters, DeterministicAcrossThreadCounts) {
  const auto b = make_block({{"a", 20}, {"b", 10}});
  dm::Job job;
  job.mapper_factory = [] { return std::make_unique<CountingMapper>(); };
  job.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  const std::vector<dm::InputSplit> splits(
      4, {.node = 0, .data = b, .charged_bytes = 0});
  dm::Engine e1({.num_nodes = 1, .slots_per_node = 2, .execution_threads = 1});
  dm::Engine e8({.num_nodes = 1, .slots_per_node = 2, .execution_threads = 8});
  EXPECT_EQ(e1.run(job, splits).counters, e8.run(job, splits).counters);
}

TEST(Counters, AbsentWhenUnused) {
  const auto b = make_block({{"a", 2}});
  dm::Engine engine({.num_nodes = 1});
  const auto report =
      engine.run(key_count_job(), {{.node = 0, .data = b, .charged_bytes = 0}});
  EXPECT_TRUE(report.counters.empty());
}

// ---- JSON report serialization ----

#include "mapred/report_json.hpp"

TEST(ReportJson, ContainsTimingAggregatesAndCounters) {
  const auto b = make_block({{"a", 5}, {"b", 3}});
  dm::Engine engine({.num_nodes = 2});
  const auto report =
      engine.run(key_count_job(), {{.node = 0, .data = b, .charged_bytes = 0}});
  const auto json = dm::report_to_json(report);
  EXPECT_NE(json.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"input_records\":8"), std::string::npos);
  EXPECT_NE(json.find("\"output_keys\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"output\":"), std::string::npos);  // not included
  const auto with_output = dm::report_to_json(report, /*include_output=*/true);
  EXPECT_NE(with_output.find("\"output\":{"), std::string::npos);
  EXPECT_NE(with_output.find("\"a\":\"5\""), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(with_output.begin(), with_output.end(), '{'),
            std::count(with_output.begin(), with_output.end(), '}'));
}
