// Unit tests for the common utilities: hashing, RNG, string helpers, byte
// formatting, thread pool, text table.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <unordered_set>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace dc = datanet::common;

// ---- hash ----

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(dc::mix64(42), dc::mix64(42));
  EXPECT_NE(dc::mix64(42), dc::mix64(43));
}

TEST(Hash, Mix64ZeroIsNotZero) { EXPECT_NE(dc::mix64(1), 0u); }

TEST(Hash, BytesDiffersBySeed) {
  EXPECT_NE(dc::hash_bytes("hello", 1), dc::hash_bytes("hello", 2));
}

TEST(Hash, BytesDiffersByContent) {
  EXPECT_NE(dc::hash_bytes("hello"), dc::hash_bytes("hellp"));
  EXPECT_NE(dc::hash_bytes("a"), dc::hash_bytes("aa"));
}

TEST(Hash, EmptyStringStable) {
  EXPECT_EQ(dc::hash_bytes(""), dc::hash_bytes(""));
}

TEST(Hash, CombineNotCommutative) {
  EXPECT_NE(dc::hash_combine(1, 2), dc::hash_combine(2, 1));
}

TEST(Hash, LowCollisionOnSequentialKeys) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) seen.insert(dc::mix64(i));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash, DoubleHashProbesDistinct) {
  const std::uint64_t h1 = dc::mix64(99), h2 = dc::mix64(100) | 1;
  std::set<std::uint64_t> probes;
  for (std::uint64_t i = 0; i < 16; ++i) {
    probes.insert(dc::double_hash(h1, h2, i) % 4096);
  }
  EXPECT_GT(probes.size(), 12u);  // few wraparound collisions tolerated
}

// ---- rng ----

TEST(Rng, Deterministic) {
  dc::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  dc::Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  dc::Rng r(5);
  const auto first = r();
  r.reseed(5);
  EXPECT_EQ(r(), first);
}

TEST(Rng, UniformInUnitInterval) {
  dc::Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  dc::Rng r(12);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  dc::Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BoundedRespectsBound) {
  dc::Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.bounded(17), 17u);
}

TEST(Rng, BoundedZeroAndOne) {
  dc::Rng r(14);
  EXPECT_EQ(r.bounded(0), 0u);
  EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  dc::Rng r(15);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  dc::Rng r(16);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  dc::Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ForkIndependent) {
  dc::Rng parent(21);
  auto c1 = parent.fork(1);
  auto c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1() == c2());
  EXPECT_LT(same, 3);
}

// ---- string_util ----

TEST(StringUtil, SplitBasic) {
  const auto parts = dc::split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = dc::split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleField) {
  const auto parts = dc::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmptyString) {
  const auto parts = dc::split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, ForEachSplitEarlyStop) {
  int count = 0;
  dc::for_each_split("a,b,c,d", ',', [&](std::string_view) -> bool {
    ++count;
    return count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(dc::trim("  hi  "), "hi");
  EXPECT_EQ(dc::trim("hi"), "hi");
  EXPECT_EQ(dc::trim("   "), "");
  EXPECT_EQ(dc::trim(""), "");
  EXPECT_EQ(dc::trim("\t x \n"), "x");
}

TEST(StringUtil, ParseU64) {
  EXPECT_EQ(dc::parse_u64("123"), 123u);
  EXPECT_EQ(dc::parse_u64("0"), 0u);
  EXPECT_FALSE(dc::parse_u64("12x"));
  EXPECT_FALSE(dc::parse_u64(""));
  EXPECT_FALSE(dc::parse_u64("-3"));
}

TEST(StringUtil, ParseI64) {
  EXPECT_EQ(dc::parse_i64("-42"), -42);
  EXPECT_EQ(dc::parse_i64("7"), 7);
  EXPECT_FALSE(dc::parse_i64("7.5"));
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*dc::parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*dc::parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(dc::parse_double("abc"));
}

TEST(StringUtil, TokenizeWordsLowercases) {
  std::vector<std::string> words;
  dc::tokenize_words("Hello World", words);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[1], "world");
}

TEST(StringUtil, TokenizeWordsPunctuation) {
  std::vector<std::string> words;
  dc::tokenize_words("don't stop, now! 42x", words);
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "don't");
  EXPECT_EQ(words[3], "42x");
}

TEST(StringUtil, TokenizeWordsAppends) {
  std::vector<std::string> words{"pre"};
  dc::tokenize_words("a b", words);
  EXPECT_EQ(words.size(), 3u);
}

TEST(StringUtil, TokenizeWordsEmpty) {
  std::vector<std::string> words;
  dc::tokenize_words("  ,,, ", words);
  EXPECT_TRUE(words.empty());
}

// ---- units ----

TEST(Units, Literals) {
  using namespace dc::literals;
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(dc::format_bytes(512), "512 B");
  EXPECT_EQ(dc::format_bytes(1024), "1.0 KiB");
  EXPECT_EQ(dc::format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(dc::format_bytes(64ull << 20), "64.0 MiB");
}

// ---- thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  dc::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  dc::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  dc::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> x{0};
  pool.submit([&] { x = 5; });
  pool.wait_idle();
  EXPECT_EQ(x.load(), 5);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  dc::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(64);
  dc::parallel_for(pool, 64, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  dc::ThreadPool pool(4);
  std::atomic<int> calls{0};
  dc::parallel_for(pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForFewerIterationsThanThreads) {
  dc::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  dc::parallel_for(pool, 3, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForManyMoreIterationsThanThreads) {
  // Auto grain chunks the range; every index must still run exactly once.
  dc::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  dc::parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForGrainOverride) {
  dc::ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(100);
    dc::parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; },
                     grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAfterWait) {
  dc::ThreadPool pool(2);
  std::atomic<int> count{0};
  dc::parallel_for(pool, 10, [&](std::size_t) { ++count; });
  dc::parallel_for(pool, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 20);
}

// ---- table ----

TEST(Table, RendersHeadersAndRows) {
  dc::TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  dc::TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(dc::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(dc::fmt_percent(0.5), "50.0%");
  EXPECT_EQ(dc::fmt_percent(0.123, 0), "12%");
}

// ---- json writer ----

#include <cmath>
#include <limits>

#include "common/json.hpp"

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(dc::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(dc::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(dc::json_escape("plain"), "plain");
}

TEST(Json, BuildsNestedDocument) {
  dc::JsonWriter w;
  w.begin_object();
  w.field("name", "datanet");
  w.field("count", std::uint64_t{3});
  w.field("ratio", 0.5);
  w.field("ok", true);
  w.key("list").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2}).end_array();
  w.key("nested").begin_object().field("x", std::int64_t{-1}).end_object();
  w.key("nothing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"datanet","count":3,"ratio":0.5,"ok":true,)"
            R"("list":[1,2],"nested":{"x":-1},"nothing":null})");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  dc::JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::quiet_NaN()).value(1.5).end_array();
  EXPECT_EQ(w.str(), "[null,1.5]");
}

TEST(Json, RejectsMalformedSequences) {
  {
    dc::JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value("no key"), std::logic_error);
  }
  {
    dc::JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
  }
  {
    dc::JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
    EXPECT_THROW(w.str(), std::logic_error);     // incomplete
  }
  {
    dc::JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
}

TEST(Json, TopLevelScalarCompletes) {
  dc::JsonWriter w;
  w.value("just a string");
  EXPECT_EQ(w.str(), "\"just a string\"");
}
