// Tests for the failure-handling layer: the FaultInjector's deterministic
// plans, the scheduler's lost-node reassignment, and the fault-aware
// selection harness (kill / corrupt / slow events mid-job) — including the
// acceptance property that a faulted run's JobReport is bit-identical for
// any engine thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datanet/experiment.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/mini_dfs.hpp"
#include "graph/bipartite.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/scheduler.hpp"

namespace dc = datanet::core;
namespace dd = datanet::dfs;
namespace dg = datanet::graph;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;

namespace {

dc::ExperimentConfig small_cfg() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.replication = 3;
  cfg.seed = 17;
  return cfg;
}

// The baseline (content-blind) selection graph, mirroring what the harness
// builds for net == nullptr. Used to precompute assignments for targeted
// fault plans.
dg::BipartiteGraph baseline_graph(const dd::MiniDfs& dfs, const std::string& path) {
  return dg::BipartiteGraph::from_dfs(
      dfs, path, [](std::size_t, dd::BlockId) { return 0; },
      /*keep_zero_weight=*/true);
}

}  // namespace

// ---- FaultInjector ----

TEST(FaultInjector, RandomPlanIsDeterministic) {
  const auto cfg = small_cfg();
  auto a = dc::make_movie_dataset(cfg, 16, 100);
  auto b = dc::make_movie_dataset(cfg, 16, 100);
  const auto fa = dd::FaultInjector::random_plan(*a.dfs, 99, 16, 2, 3, 1);
  const auto fb = dd::FaultInjector::random_plan(*b.dfs, 99, 16, 2, 3, 1);
  ASSERT_EQ(fa.plan().size(), fb.plan().size());
  for (std::size_t i = 0; i < fa.plan().size(); ++i) {
    EXPECT_EQ(fa.plan()[i].at_task, fb.plan()[i].at_task);
    EXPECT_EQ(fa.plan()[i].kind, fb.plan()[i].kind);
    EXPECT_EQ(fa.plan()[i].node, fb.plan()[i].node);
    EXPECT_EQ(fa.plan()[i].block, fb.plan()[i].block);
  }
}

TEST(FaultInjector, AdvanceFiresDueEventsOnceAndMonotonically) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 8, 80);
  dd::FaultInjector inj(*ds.dfs,
                        {{.at_task = 2, .kind = dd::FaultKind::kKillNode, .node = 1},
                         {.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = 2}});
  EXPECT_TRUE(inj.advance(1).empty());
  const auto first = inj.advance(3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].node, 1u);
  EXPECT_FALSE(ds.dfs->is_active(1));
  EXPECT_FALSE(inj.exhausted());
  EXPECT_TRUE(inj.advance(2).empty());  // going backwards fires nothing
  const auto second = inj.advance(100);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].node, 2u);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.stats().nodes_killed, 2u);
}

TEST(FaultInjector, NeverEmptiesTheCluster) {
  dc::ExperimentConfig cfg = small_cfg();
  cfg.num_nodes = 3;
  cfg.replication = 2;
  auto ds = dc::make_movie_dataset(cfg, 6, 60);
  auto inj = dd::FaultInjector::random_plan(*ds.dfs, 5, 10, /*kill_nodes=*/8, 0);
  (void)inj.advance(1000);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_GE(ds.dfs->num_active_nodes(), 1u);
  EXPECT_LE(inj.stats().nodes_killed, 2u);
}

TEST(FaultInjector, RejectsBadEvents) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 4, 40);
  EXPECT_THROW(dd::FaultInjector(*ds.dfs, {{.at_task = 0,
                                            .kind = dd::FaultKind::kKillNode,
                                            .node = 99}}),
               std::invalid_argument);
  EXPECT_THROW(dd::FaultInjector(*ds.dfs, {{.at_task = 0,
                                            .kind = dd::FaultKind::kSlowNode,
                                            .node = 0,
                                            .speed_factor = 0.0}}),
               std::invalid_argument);
}

// ---- scheduler reaction ----

TEST(ReassignStranded, MovesDeadNodeTasksToAliveReplicaHolders) {
  const dg::BipartiteGraph graph(
      3, {dg::BlockVertex{.block_id = 0, .weight = 5, .hosts = {0, 1}},
          dg::BlockVertex{.block_id = 1, .weight = 7, .hosts = {1, 2}},
          dg::BlockVertex{.block_id = 2, .weight = 9, .hosts = {0, 2}}});
  const std::vector<std::uint64_t> bytes{10, 20, 30};
  dsch::AssignmentRecord rec;
  rec.block_to_node = {0, 0, 0};
  rec.node_load = {21, 0, 0};
  rec.node_input_bytes = {60, 0, 0};
  rec.local_tasks = 2;   // blocks 0 and 2 host node 0
  rec.remote_tasks = 1;  // block 1 does not

  const auto moved =
      dsch::reassign_stranded(rec, graph, bytes, {false, true, true});
  EXPECT_EQ(moved, 3u);
  // Every reassigned block lands on an alive replica holder: all local now.
  EXPECT_EQ(rec.local_tasks, 3u);
  EXPECT_EQ(rec.remote_tasks, 0u);
  EXPECT_EQ(rec.node_input_bytes[0], 0u);
  EXPECT_EQ(rec.node_input_bytes[1] + rec.node_input_bytes[2], 60u);
  EXPECT_EQ(rec.node_load[0], 0u);
  for (const auto n : rec.block_to_node) EXPECT_NE(n, 0u);

  EXPECT_THROW(
      dsch::reassign_stranded(rec, graph, bytes, {false, false, false}),
      std::runtime_error);
}

// ---- fault-aware selection harness ----

TEST(FaultedRun, NoFaultsMatchesCleanRun) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      dc::run_selection(*ds.dfs, ds.path, key, clean_sched, nullptr, cfg);

  dd::FaultInjector no_faults(*ds.dfs, {});
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = dc::run_selection_faulted(*ds.dfs, ds.path, key,
                                                 faulted_sched, nullptr, cfg,
                                                 no_faults);
  EXPECT_EQ(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
  EXPECT_EQ(faulted.report.output, clean.report.output);
  EXPECT_EQ(faulted.node_local_data, clean.node_local_data);
  EXPECT_EQ(dm::report_to_json(faulted.report, true),
            dm::report_to_json(faulted.report, true));
}

TEST(FaultedRun, KillNodeMidJobRetriesAndLosesNothing) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      dc::run_selection(*ds.dfs, ds.path, key, clean_sched, nullptr, cfg);

  // Kill the node that runs block 0 — the first task to complete — after a
  // third of the run: its pending tasks are reassigned and its completed
  // map outputs (at least block 0) are re-executed on survivors.
  const dd::NodeId victim = clean.assignment.block_to_node[0];
  dd::FaultInjector faults(
      *ds.dfs,
      {{.at_task = 8, .kind = dd::FaultKind::kKillNode, .node = victim}});
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = dc::run_selection_faulted(*ds.dfs, ds.path, key,
                                                 faulted_sched, nullptr, cfg,
                                                 faults);
  EXPECT_GT(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
  EXPECT_TRUE(faulted.lost_block_ids.empty());
  // With replication 3 and one dead node no data is lost: the job's reduced
  // output is exactly the fault-free output.
  EXPECT_EQ(faulted.report.output, clean.report.output);
  // Nothing remains assigned to the dead node, and it holds no data.
  for (const auto n : faulted.assignment.block_to_node) EXPECT_NE(n, victim);
  EXPECT_TRUE(faulted.node_local_data[victim].empty());
}

TEST(FaultedRun, ReportIsBitIdenticalAcrossThreadCounts) {
  // The dataset build and the drain are independent of execution_threads, so
  // probe once for the node that completes block 0 and kill it in every run.
  dd::NodeId victim;
  {
    const auto cfg = small_cfg();
    auto probe = dc::make_movie_dataset(cfg, 24, 150);
    const auto graph = baseline_graph(*probe.dfs, probe.path);
    std::vector<std::uint64_t> bytes(graph.num_blocks());
    for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
      bytes[j] = probe.dfs->block(graph.block(j).block_id).size_bytes;
    }
    dsch::LocalityScheduler sched(7);
    victim = dsch::drain(sched, graph, bytes).block_to_node[0];
  }

  std::vector<std::string> jsons;
  for (const std::uint32_t threads : {1u, 4u}) {
    auto cfg = small_cfg();
    cfg.execution_threads = threads;
    auto ds = dc::make_movie_dataset(cfg, 24, 150);
    dd::FaultInjector faults(
        *ds.dfs,
        {{.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = victim},
         {.at_task = 12, .kind = dd::FaultKind::kSlowNode,
          .node = static_cast<dd::NodeId>((victim + 1) % cfg.num_nodes),
          .speed_factor = 0.5}});
    dsch::LocalityScheduler sched(7);
    const auto r = dc::run_selection_faulted(*ds.dfs, ds.path, ds.hot_keys[0],
                                             sched, nullptr, cfg, faults);
    EXPECT_GT(r.report.retries, 0u);
    jsons.push_back(dm::report_to_json(r.report, /*include_output=*/true));
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

TEST(FaultedRun, CorruptReplicaRetriesOnSurvivingCopy) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      dc::run_selection(*ds.dfs, ds.path, key, clean_sched, nullptr, cfg);

  // Corrupt the copy on the exact node each of the first three blocks is
  // assigned to (the drain is deterministic, so precompute it), forcing the
  // local read to fail checksum and fall back to a surviving replica.
  const auto graph = baseline_graph(*ds.dfs, ds.path);
  std::vector<std::uint64_t> bytes(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    bytes[j] = ds.dfs->block(graph.block(j).block_id).size_bytes;
  }
  dsch::LocalityScheduler probe(7);
  const auto rec = dsch::drain(probe, graph, bytes);
  std::vector<dd::FaultEvent> plan;
  for (std::size_t j = 0; j < 3; ++j) {
    const auto bid = graph.block(j).block_id;
    const auto node = rec.block_to_node[j];
    if (!ds.dfs->is_local(bid, node)) continue;  // remote task: no local copy
    plan.push_back({.at_task = 0, .kind = dd::FaultKind::kCorruptReplica,
                    .node = node, .block = bid});
  }
  ASSERT_FALSE(plan.empty());
  const auto planned = plan.size();

  dd::FaultInjector faults(*ds.dfs, std::move(plan));
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = dc::run_selection_faulted(*ds.dfs, ds.path, key,
                                                 faulted_sched, nullptr, cfg,
                                                 faults);
  EXPECT_GE(faulted.report.retries, planned);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_EQ(faulted.report.output, clean.report.output);
  EXPECT_EQ(faults.stats().replicas_corrupted, planned);
}

TEST(FaultedRun, MediaCorruptionLosesBlockButDegradesLoudly) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];
  const auto victim = ds.dfs->blocks_of(ds.path)[0];

  // Flip a byte of the logical block data: every replica fails checksum and
  // no healthy source exists — the block is unrecoverable.
  dd::FaultInjector faults(*ds.dfs, {{.at_task = 0,
                                      .kind = dd::FaultKind::kCorruptBlock,
                                      .block = victim}});
  dsch::LocalityScheduler sched(7);
  const auto r = dc::run_selection_faulted(*ds.dfs, ds.path, key, sched,
                                           nullptr, cfg, faults);
  EXPECT_EQ(r.report.lost_blocks, 1u);
  EXPECT_TRUE(r.report.degraded);
  ASSERT_EQ(r.lost_block_ids.size(), 1u);
  EXPECT_EQ(r.lost_block_ids[0], victim);
  EXPECT_GT(r.report.retries, 0u);  // every replica was tried before giving up
  // The run still completes and produces output from the surviving blocks.
  EXPECT_FALSE(r.report.output.empty());
}

TEST(FaultedRun, SlowNodeStretchesSimulatedClock) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      dc::run_selection(*ds.dfs, ds.path, key, clean_sched, nullptr, cfg);

  dd::FaultInjector faults(*ds.dfs, {{.at_task = 0,
                                      .kind = dd::FaultKind::kSlowNode,
                                      .node = 0,
                                      .speed_factor = 0.25}});
  dsch::LocalityScheduler faulted_sched(7);
  const auto slow = dc::run_selection_faulted(*ds.dfs, ds.path, key,
                                              faulted_sched, nullptr, cfg,
                                              faults);
  EXPECT_TRUE(faults.any_slowdown());
  EXPECT_DOUBLE_EQ(faults.node_speeds()[0], 0.25);
  EXPECT_EQ(slow.report.output, clean.report.output);  // timing-only fault
  EXPECT_GE(slow.report.total_seconds, clean.report.total_seconds);
}
