// Tests for the failure-handling layer: the FaultInjector's deterministic
// plans (kill / corrupt / slow / stall / transient-read), the scheduler's
// lost-node reassignment, and the fault-aware SelectionRuntime — timeouts,
// backoff re-dispatch, speculative execution, the post-fault fsck invariant,
// and the acceptance property that a faulted run's JobReport is
// bit-identical for any engine thread count and scheduler.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/fsck.hpp"
#include "dfs/mini_dfs.hpp"
#include "graph/bipartite.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/lpt.hpp"
#include "scheduler/scheduler.hpp"

namespace dc = datanet::core;
namespace dd = datanet::dfs;
namespace dg = datanet::graph;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;

namespace {

dc::ExperimentConfig small_cfg() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.replication = 3;
  cfg.seed = 17;
  return cfg;
}

// The baseline (content-blind) selection graph, mirroring what the harness
// builds for net == nullptr. Used to precompute assignments for targeted
// fault plans.
dg::BipartiteGraph baseline_graph(const dd::MiniDfs& dfs, const std::string& path) {
  return dg::BipartiteGraph::from_dfs(
      dfs, path, [](std::size_t, dd::BlockId) { return 0; },
      /*keep_zero_weight=*/true);
}

// Clean-path runtime run (DirectRead + NoFaults + Analytic).
dc::SelectionResult run_clean(const dd::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              dsch::TaskScheduler& sched,
                              const dc::ExperimentConfig& cfg) {
  dc::DirectReadPolicy read(dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing)
      .run(dfs, path, key, sched, nullptr, cfg);
}

// Fault-path runtime run (ChecksumRetry + InjectedFaults + Analytic).
dc::SelectionResult run_faulted(dd::MiniDfs& dfs, const std::string& path,
                                const std::string& key,
                                dsch::TaskScheduler& sched,
                                const dc::ExperimentConfig& cfg,
                                dd::FaultInjector& injector,
                                dc::AttemptOptions attempts = {}) {
  dc::ChecksumRetryReadPolicy read(dfs, cfg.remote_read_penalty);
  dc::InjectedFaults faults(injector);
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing, attempts)
      .run(dfs, path, key, sched, nullptr, cfg);
}

}  // namespace

// ---- FaultInjector ----

TEST(FaultInjector, RandomPlanIsDeterministic) {
  const auto cfg = small_cfg();
  auto a = dc::make_movie_dataset(cfg, 16, 100);
  auto b = dc::make_movie_dataset(cfg, 16, 100);
  const auto fa = dd::FaultInjector::random_plan(*a.dfs, 99, 16, 2, 3, 1);
  const auto fb = dd::FaultInjector::random_plan(*b.dfs, 99, 16, 2, 3, 1);
  ASSERT_EQ(fa.plan().size(), fb.plan().size());
  for (std::size_t i = 0; i < fa.plan().size(); ++i) {
    EXPECT_EQ(fa.plan()[i].at_task, fb.plan()[i].at_task);
    EXPECT_EQ(fa.plan()[i].kind, fb.plan()[i].kind);
    EXPECT_EQ(fa.plan()[i].node, fb.plan()[i].node);
    EXPECT_EQ(fa.plan()[i].block, fb.plan()[i].block);
  }
}

TEST(FaultInjector, AdvanceFiresDueEventsOnceAndMonotonically) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 8, 80);
  dd::FaultInjector inj(*ds.dfs,
                        {{.at_task = 2, .kind = dd::FaultKind::kKillNode, .node = 1},
                         {.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = 2}});
  EXPECT_TRUE(inj.advance(1).empty());
  const auto first = inj.advance(3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].node, 1u);
  EXPECT_FALSE(ds.dfs->is_active(1));
  EXPECT_FALSE(inj.exhausted());
  EXPECT_TRUE(inj.advance(2).empty());  // going backwards fires nothing
  const auto second = inj.advance(100);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].node, 2u);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_EQ(inj.stats().nodes_killed, 2u);
}

TEST(FaultInjector, NeverEmptiesTheCluster) {
  dc::ExperimentConfig cfg = small_cfg();
  cfg.num_nodes = 3;
  cfg.replication = 2;
  auto ds = dc::make_movie_dataset(cfg, 6, 60);
  auto inj = dd::FaultInjector::random_plan(*ds.dfs, 5, 10, /*kill_nodes=*/8, 0);
  (void)inj.advance(1000);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_GE(ds.dfs->num_active_nodes(), 1u);
  EXPECT_LE(inj.stats().nodes_killed, 2u);
}

TEST(FaultInjector, RejectsBadEvents) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 4, 40);
  EXPECT_THROW(dd::FaultInjector(*ds.dfs, {{.at_task = 0,
                                            .kind = dd::FaultKind::kKillNode,
                                            .node = 99}}),
               std::invalid_argument);
  EXPECT_THROW(dd::FaultInjector(*ds.dfs, {{.at_task = 0,
                                            .kind = dd::FaultKind::kSlowNode,
                                            .node = 0,
                                            .speed_factor = 0.0}}),
               std::invalid_argument);
}

// ---- scheduler reaction ----

TEST(ReassignStranded, MovesDeadNodeTasksToAliveReplicaHolders) {
  const dg::BipartiteGraph graph(
      3, {dg::BlockVertex{.block_id = 0, .weight = 5, .hosts = {0, 1}},
          dg::BlockVertex{.block_id = 1, .weight = 7, .hosts = {1, 2}},
          dg::BlockVertex{.block_id = 2, .weight = 9, .hosts = {0, 2}}});
  const std::vector<std::uint64_t> bytes{10, 20, 30};
  dsch::AssignmentRecord rec;
  rec.block_to_node = {0, 0, 0};
  rec.node_load = {21, 0, 0};
  rec.node_input_bytes = {60, 0, 0};
  rec.local_tasks = 2;   // blocks 0 and 2 host node 0
  rec.remote_tasks = 1;  // block 1 does not

  const auto moved =
      dsch::reassign_stranded(rec, graph, bytes, {false, true, true});
  EXPECT_EQ(moved, 3u);
  // Every reassigned block lands on an alive replica holder: all local now.
  EXPECT_EQ(rec.local_tasks, 3u);
  EXPECT_EQ(rec.remote_tasks, 0u);
  EXPECT_EQ(rec.node_input_bytes[0], 0u);
  EXPECT_EQ(rec.node_input_bytes[1] + rec.node_input_bytes[2], 60u);
  EXPECT_EQ(rec.node_load[0], 0u);
  for (const auto n : rec.block_to_node) EXPECT_NE(n, 0u);

  EXPECT_THROW(
      dsch::reassign_stranded(rec, graph, bytes, {false, false, false}),
      std::runtime_error);
}

// ---- fault-aware selection harness ----

TEST(FaultedRun, NoFaultsMatchesCleanRun) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  dd::FaultInjector no_faults(*ds.dfs, {});
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = run_faulted(*ds.dfs, ds.path, key, faulted_sched, cfg,
                                  no_faults);
  EXPECT_EQ(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
  EXPECT_EQ(faulted.report.output, clean.report.output);
  EXPECT_EQ(faulted.node_local_data, clean.node_local_data);
  EXPECT_EQ(dm::report_to_json(faulted.report, true),
            dm::report_to_json(faulted.report, true));
}

TEST(FaultedRun, KillNodeMidJobRetriesAndLosesNothing) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  // Kill the node that runs block 0 — the first task to complete — after a
  // third of the run: its pending tasks are reassigned and its completed
  // map outputs (at least block 0) are re-executed on survivors.
  const dd::NodeId victim = clean.assignment.block_to_node[0];
  dd::FaultInjector faults(
      *ds.dfs,
      {{.at_task = 8, .kind = dd::FaultKind::kKillNode, .node = victim}});
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = run_faulted(*ds.dfs, ds.path, key, faulted_sched, cfg,
                                  faults);
  EXPECT_GT(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
  EXPECT_TRUE(faulted.lost_block_ids.empty());
  // With replication 3 and one dead node no data is lost: the job's reduced
  // output is exactly the fault-free output.
  EXPECT_EQ(faulted.report.output, clean.report.output);
  // Nothing remains assigned to the dead node, and it holds no data.
  for (const auto n : faulted.assignment.block_to_node) EXPECT_NE(n, victim);
  EXPECT_TRUE(faulted.node_local_data[victim].empty());
}

TEST(FaultedRun, ReportIsBitIdenticalAcrossThreadCounts) {
  // The dataset build and the drain are independent of execution_threads, so
  // probe once for the node that completes block 0 and kill it in every run.
  dd::NodeId victim;
  {
    const auto cfg = small_cfg();
    auto probe = dc::make_movie_dataset(cfg, 24, 150);
    const auto graph = baseline_graph(*probe.dfs, probe.path);
    std::vector<std::uint64_t> bytes(graph.num_blocks());
    for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
      bytes[j] = probe.dfs->block(graph.block(j).block_id).size_bytes;
    }
    dsch::LocalityScheduler sched(7);
    victim = dsch::drain(sched, graph, bytes).block_to_node[0];
  }

  std::vector<std::string> jsons;
  for (const std::uint32_t threads : {1u, 4u}) {
    auto cfg = small_cfg();
    cfg.execution_threads = threads;
    auto ds = dc::make_movie_dataset(cfg, 24, 150);
    dd::FaultInjector faults(
        *ds.dfs,
        {{.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = victim},
         {.at_task = 12, .kind = dd::FaultKind::kSlowNode,
          .node = static_cast<dd::NodeId>((victim + 1) % cfg.num_nodes),
          .speed_factor = 0.5}});
    dsch::LocalityScheduler sched(7);
    const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                                faults);
    EXPECT_GT(r.report.retries, 0u);
    jsons.push_back(dm::report_to_json(r.report, /*include_output=*/true));
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

TEST(FaultedRun, CorruptReplicaRetriesOnSurvivingCopy) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  // Corrupt the copy on the exact node each of the first three blocks is
  // assigned to (the drain is deterministic, so precompute it), forcing the
  // local read to fail checksum and fall back to a surviving replica.
  const auto graph = baseline_graph(*ds.dfs, ds.path);
  std::vector<std::uint64_t> bytes(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    bytes[j] = ds.dfs->block(graph.block(j).block_id).size_bytes;
  }
  dsch::LocalityScheduler probe(7);
  const auto rec = dsch::drain(probe, graph, bytes);
  std::vector<dd::FaultEvent> plan;
  for (std::size_t j = 0; j < 3; ++j) {
    const auto bid = graph.block(j).block_id;
    const auto node = rec.block_to_node[j];
    if (!ds.dfs->is_local(bid, node)) continue;  // remote task: no local copy
    plan.push_back({.at_task = 0, .kind = dd::FaultKind::kCorruptReplica,
                    .node = node, .block = bid});
  }
  ASSERT_FALSE(plan.empty());
  const auto planned = plan.size();

  dd::FaultInjector faults(*ds.dfs, std::move(plan));
  dsch::LocalityScheduler faulted_sched(7);
  const auto faulted = run_faulted(*ds.dfs, ds.path, key, faulted_sched, cfg,
                                  faults);
  EXPECT_GE(faulted.report.retries, planned);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_EQ(faulted.report.output, clean.report.output);
  EXPECT_EQ(faults.stats().replicas_corrupted, planned);
}

TEST(FaultedRun, MediaCorruptionLosesBlockButDegradesLoudly) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];
  const auto victim = ds.dfs->blocks_of(ds.path)[0];

  // Flip a byte of the logical block data: every replica fails checksum and
  // no healthy source exists — the block is unrecoverable.
  dd::FaultInjector faults(*ds.dfs, {{.at_task = 0,
                                      .kind = dd::FaultKind::kCorruptBlock,
                                      .block = victim}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, key, sched, cfg, faults);
  EXPECT_EQ(r.report.lost_blocks, 1u);
  EXPECT_TRUE(r.report.degraded);
  ASSERT_EQ(r.lost_block_ids.size(), 1u);
  EXPECT_EQ(r.lost_block_ids[0], victim);
  EXPECT_GT(r.report.retries, 0u);  // every replica was tried before giving up
  // The run still completes and produces output from the surviving blocks.
  EXPECT_FALSE(r.report.output.empty());
}

TEST(FaultedRun, SlowNodeStretchesSimulatedClock) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  dd::FaultInjector faults(*ds.dfs, {{.at_task = 0,
                                      .kind = dd::FaultKind::kSlowNode,
                                      .node = 0,
                                      .speed_factor = 0.25}});
  dsch::LocalityScheduler faulted_sched(7);
  const auto slow = run_faulted(*ds.dfs, ds.path, key, faulted_sched, cfg,
                                   faults);
  EXPECT_TRUE(faults.any_slowdown());
  EXPECT_DOUBLE_EQ(faults.node_speeds()[0], 0.25);
  EXPECT_EQ(slow.report.output, clean.report.output);  // timing-only fault
  EXPECT_GE(slow.report.total_seconds, clean.report.total_seconds);
}

// ---- straggler resilience (stall / transient / speculation) ----

TEST(StragglerRun, StalledNodesTimeOutAndFinishWithinRetryCap) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean = run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  // Two nodes accept tasks and never answer, from the very first dispatch.
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 0, .kind = dd::FaultKind::kStallNode, .node = 1},
                {.at_task = 0, .kind = dd::FaultKind::kStallNode, .node = 4}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, key, sched, cfg, faults);

  EXPECT_EQ(faults.stats().nodes_stalled, 2u);
  // The run completes (no hang), nothing is lost, nothing is degraded: every
  // parked attempt timed out and was re-dispatched within the retry cap.
  EXPECT_GT(r.report.attempts.timeouts, 0u);
  EXPECT_GT(r.report.attempts.redispatches, 0u);
  EXPECT_EQ(r.report.attempts.degraded_tasks, 0u);
  EXPECT_EQ(r.report.lost_blocks, 0u);
  EXPECT_FALSE(r.report.degraded);
  EXPECT_EQ(r.report.output, clean.report.output);
  // Stalled nodes stay alive (distinguishable from a kill)...
  EXPECT_TRUE(ds.dfs->is_active(1));
  EXPECT_TRUE(ds.dfs->is_active(4));
  // ...but end the run with none of the filtered data.
  EXPECT_TRUE(r.node_local_data[1].empty());
  EXPECT_TRUE(r.node_local_data[4].empty());
}

TEST(StragglerRun, SpeculationCountersFireUnderStall) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);

  // A generous timeout parks the stalled node's attempts long enough that
  // the drain-phase speculation trigger fires before any deadline expires.
  dc::AttemptOptions aopt;
  aopt.timeout_ticks = 1000;
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 0, .kind = dd::FaultKind::kStallNode, .node = 2}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                             faults, aopt);
  EXPECT_GT(r.report.attempts.speculative_launched, 0u);
  EXPECT_GT(r.report.attempts.speculative_wins, 0u);
  EXPECT_EQ(r.report.attempts.degraded_tasks, 0u);
  EXPECT_FALSE(r.report.degraded);
  // The analytic backend priced the duplicates with the engine's backup pass.
  EXPECT_EQ(r.report.attempts.timeouts, 0u);  // nothing expired: spec won
}

TEST(StragglerRun, SpeculationOffStillCompletesViaTimeouts) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  dc::AttemptOptions aopt;
  aopt.speculative = false;
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 0, .kind = dd::FaultKind::kStallNode, .node = 2}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                             faults, aopt);
  EXPECT_EQ(r.report.attempts.speculative_launched, 0u);
  EXPECT_GT(r.report.attempts.timeouts, 0u);
  EXPECT_EQ(r.report.attempts.degraded_tasks, 0u);
  EXPECT_FALSE(r.report.degraded);
}

TEST(StragglerRun, TransientReadErrorsConvergeWithZeroDegradation) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean = run_clean(*ds.dfs, ds.path, key, clean_sched, cfg);

  const auto blocks = ds.dfs->blocks_of(ds.path);
  dd::FaultInjector faults(
      *ds.dfs,
      {{.at_task = 0, .kind = dd::FaultKind::kTransientReadError,
        .block = blocks[0], .fail_count = 2},
       {.at_task = 0, .kind = dd::FaultKind::kTransientReadError,
        .block = blocks[3], .fail_count = 2}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, key, sched, cfg, faults);

  // Every armed failure was consumed, every retry eventually succeeded.
  EXPECT_EQ(faults.stats().transient_failures_consumed, 4u);
  EXPECT_EQ(r.report.attempts.transient_retries, 4u);
  EXPECT_EQ(r.report.attempts.degraded_tasks, 0u);
  EXPECT_EQ(r.report.lost_blocks, 0u);
  EXPECT_FALSE(r.report.degraded);
  EXPECT_EQ(r.report.output, clean.report.output);
}

TEST(StragglerRun, RetryCapDegradesLoudlyInsteadOfHanging) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  // More transient failures than the attempt cap allows: the task degrades.
  dc::AttemptOptions aopt;
  aopt.max_attempts = 3;
  const auto blocks = ds.dfs->blocks_of(ds.path);
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 0, .kind = dd::FaultKind::kTransientReadError,
                 .block = blocks[0], .fail_count = 50}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                             faults, aopt);
  EXPECT_EQ(r.report.attempts.degraded_tasks, 1u);
  EXPECT_TRUE(r.report.degraded);
  // Degradation is bounded: the rest of the run is intact.
  EXPECT_FALSE(r.report.output.empty());
}

TEST(StragglerRun, MixedPlanBitIdenticalAcrossSchedulersAndThreads) {
  // One seeded kill+stall+transient plan; every scheduler must produce a
  // bit-identical JSON report at 1 vs 4 engine threads.
  const auto make_sched = [](int which) -> std::unique_ptr<dsch::TaskScheduler> {
    switch (which) {
      case 0: return std::make_unique<dsch::LocalityScheduler>(7);
      case 1: return std::make_unique<dsch::DataNetScheduler>();
      case 2: return std::make_unique<dsch::FlowScheduler>();
      default: return std::make_unique<dsch::LptScheduler>();
    }
  };
  for (int which = 0; which < 4; ++which) {
    std::vector<std::string> jsons;
    for (const std::uint32_t threads : {1u, 4u}) {
      auto cfg = small_cfg();
      cfg.execution_threads = threads;
      auto ds = dc::make_movie_dataset(cfg, 24, 150);
      const auto blocks = ds.dfs->blocks_of(ds.path);
      dd::FaultInjector faults(
          *ds.dfs,
          {{.at_task = 0, .kind = dd::FaultKind::kTransientReadError,
            .block = blocks[1], .fail_count = 2},
           {.at_task = 3, .kind = dd::FaultKind::kStallNode, .node = 5},
           {.at_task = 6, .kind = dd::FaultKind::kKillNode, .node = 3}});
      auto sched = make_sched(which);
      const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], *sched,
                                 cfg, faults);
      EXPECT_EQ(r.report.attempts.degraded_tasks, 0u) << "scheduler " << which;
      jsons.push_back(dm::report_to_json(r.report, /*include_output=*/true));
    }
    EXPECT_EQ(jsons[0], jsons[1]) << "scheduler " << which;
  }
}

// ---- post-fault DFS invariants (fsck) ----

TEST(PostFaultFsck, CompletedKillRunLeavesNoMissingBlocks) {
  const auto cfg = small_cfg();
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = 2}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                             faults);
  const auto post = dd::check_post_fault_invariants(*ds.dfs);
  EXPECT_TRUE(post.ok) << post.violation;
  EXPECT_EQ(post.report.missing_blocks, 0u);
  // The report surfaces the DFS health alongside the run's own counters.
  EXPECT_EQ(r.report.under_replicated, post.report.under_replicated);
  const auto json = dm::report_to_json(r.report, false);
  EXPECT_NE(json.find("\"under_replicated\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
}

TEST(PostFaultFsck, ReplicationOneMayLoseDataButStaysOk) {
  auto cfg = small_cfg();
  cfg.replication = 1;
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  dd::FaultInjector faults(
      *ds.dfs, {{.at_task = 5, .kind = dd::FaultKind::kKillNode, .node = 2}});
  dsch::LocalityScheduler sched(7);
  const auto r = run_faulted(*ds.dfs, ds.path, ds.hot_keys[0], sched, cfg,
                             faults);
  const auto post = dd::check_post_fault_invariants(*ds.dfs);
  // Single-replica data on a killed node is legitimately gone; the invariant
  // helper allows it and the run reports the loss loudly instead of hanging.
  EXPECT_TRUE(post.ok) << post.violation;
  if (post.report.missing_blocks > 0) {
    EXPECT_TRUE(r.report.degraded);
    EXPECT_GT(r.report.lost_blocks + r.report.attempts.degraded_tasks, 0u);
  }
}
