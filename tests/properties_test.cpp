// Property-based tests: randomized inputs checked against independent
// reference implementations and conservation laws. Seeds sweep via TEST_P so
// each property is exercised over many independent instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "dfs/mini_dfs.hpp"
#include "elasticmap/elastic_map.hpp"
#include "elasticmap/separator.hpp"
#include "graph/assignment.hpp"
#include "mapred/engine.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"
#include "workload/record.hpp"

namespace dc = datanet::common;
namespace de = datanet::elasticmap;
namespace dw = datanet::workload;

// ---- separator vs brute-force reference ----

class SeparatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeparatorProperty, MatchesSortBasedReference) {
  // Reference: sort sub-datasets by size; the bucket method must select a
  // superset of the top-(alpha*m) set truncated at bucket granularity —
  // concretely, its threshold is a bucket edge, everything >= threshold is
  // kept, and the kept count is within one bucket population of the target.
  dc::Rng rng(GetParam());
  de::DominantSeparator sep({.bucket_unit = 16, .bucket_max = 16 * 64});
  std::map<std::uint64_t, std::uint64_t> sizes;
  const std::uint64_t n = 50 + rng.bounded(400);
  for (std::uint64_t id = 0; id < n; ++id) {
    // Heavy-tailed sizes: most small, a few large.
    const std::uint64_t size =
        rng.bernoulli(0.1) ? 500 + rng.bounded(3000) : 1 + rng.bounded(120);
    // Split into 1-3 increments to exercise the incremental bucket moves.
    const auto parts = 1 + rng.bounded(3);
    std::uint64_t given = 0;
    for (std::uint64_t p = 0; p + 1 < parts; ++p) {
      const std::uint64_t inc = size / parts;
      sep.add(id, inc);
      given += inc;
    }
    sep.add(id, size - given);
    sizes[id] = size;
  }

  const double alpha = 0.1 + rng.uniform() * 0.6;
  const auto threshold = sep.threshold_for_fraction(alpha);
  const auto budget = static_cast<std::uint64_t>(
      alpha * static_cast<double>(sizes.size()) + 1e-9);

  // 1. Accumulated sizes are exact.
  ASSERT_EQ(sep.num_subdatasets(), sizes.size());
  for (const auto& [id, size] : sizes) {
    EXPECT_EQ(sep.sizes().at(id), size);
  }

  // 2. Everything >= threshold is kept; count within one bucket of budget.
  const auto kept = sep.count_at_or_above(threshold);
  if (threshold > 0) {
    // Count strictly below the next lower edge would exceed the budget:
    // verify the reference top-k set is contained in the kept set.
    std::vector<std::uint64_t> sorted;
    for (const auto& [_, size] : sizes) sorted.push_back(size);
    std::sort(sorted.rbegin(), sorted.rend());
    // Kept set must cover every sub-dataset at least as large as the
    // budget-th largest value that is >= threshold.
    for (const auto& [id, size] : sizes) {
      if (size >= threshold) {
        EXPECT_LE(threshold, size);
      }
    }
    // Granularity bound: kept cannot exceed budget by more than the
    // population of the threshold bucket itself (or the top bucket rule).
    const auto& edges = sep.bucket_edges();
    const bool top_bucket = threshold == edges.back();
    if (!top_bucket) {
      EXPECT_LE(kept, budget + sep.count_at_or_above(threshold) -
                           sep.count_at_or_above(edges.back()));
    }
  } else {
    EXPECT_EQ(kept, sizes.size());  // everything kept
  }

  // 3. Monotonicity: larger alpha never raises the threshold.
  const auto t_small = sep.threshold_for_fraction(0.1);
  const auto t_large = sep.threshold_for_fraction(0.9);
  EXPECT_GE(t_small, t_large);

  // 4. Total bytes conserved.
  const auto total = std::accumulate(
      sizes.begin(), sizes.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(sep.total_bytes(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparatorProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- record codec fuzz ----

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, DecodeNeverCrashesAndRoundTripsValid) {
  dc::Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    // Random bytes (printable-biased, embedded tabs) must never crash.
    std::string line;
    const auto len = rng.bounded(60);
    for (std::uint64_t i = 0; i < len; ++i) {
      const auto roll = rng.bounded(20);
      if (roll == 0) {
        line.push_back('\t');
      } else if (roll == 1) {
        line.push_back(static_cast<char>(rng.bounded(256)));
      } else {
        line.push_back(static_cast<char>('a' + rng.bounded(26)));
      }
    }
    const auto rv = dw::decode_record(line);
    if (rv) {
      // Anything decodable must re-encode to an equivalent record.
      const dw::Record r{rv->timestamp, std::string(rv->key),
                         std::string(rv->payload)};
      const auto re = dw::decode_record(dw::encode_record(r));
      ASSERT_TRUE(re);
      EXPECT_EQ(re->timestamp, rv->timestamp);
      EXPECT_EQ(re->key, rv->key);
      EXPECT_EQ(re->payload, rv->payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<std::uint64_t>(100, 106));

// ---- scheduler conservation laws across random graphs ----

class SchedulerLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerLaws, AllSchedulersConserveWeightAndBlocks) {
  dc::Rng rng(GetParam());
  const std::uint32_t nodes = 3 + static_cast<std::uint32_t>(rng.bounded(14));
  const std::size_t blocks = 8 + rng.bounded(120);
  const std::uint32_t repl =
      1 + static_cast<std::uint32_t>(rng.bounded(std::min(3u, nodes)));

  std::vector<datanet::graph::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    datanet::graph::BlockVertex v;
    v.block_id = j;
    v.weight = rng.bounded(5000);
    while (v.hosts.size() < repl) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  const datanet::graph::BipartiteGraph g(nodes, bs);
  const std::vector<std::uint64_t> bytes(blocks, 4096);

  datanet::scheduler::LocalityScheduler loc(GetParam());
  datanet::scheduler::DataNetScheduler dn;
  datanet::scheduler::DataNetScheduler strict(
      {.strict_locality = true, .locality_bias = 0.25, .capabilities = {}});
  datanet::scheduler::FlowScheduler flow;
  for (datanet::scheduler::TaskScheduler* sched :
       {static_cast<datanet::scheduler::TaskScheduler*>(&loc),
        static_cast<datanet::scheduler::TaskScheduler*>(&dn),
        static_cast<datanet::scheduler::TaskScheduler*>(&strict),
        static_cast<datanet::scheduler::TaskScheduler*>(&flow)}) {
    const auto rec = datanet::scheduler::drain(*sched, g, bytes);
    const auto total =
        std::accumulate(rec.node_load.begin(), rec.node_load.end(), 0ull);
    EXPECT_EQ(total, g.total_weight()) << sched->name();
    EXPECT_EQ(rec.local_tasks + rec.remote_tasks, blocks) << sched->name();
    const auto input = std::accumulate(rec.node_input_bytes.begin(),
                                       rec.node_input_bytes.end(), 0ull);
    EXPECT_EQ(input, blocks * 4096) << sched->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerLaws,
                         ::testing::Range<std::uint64_t>(200, 212));

// ---- flow assignment optimality bound vs brute force ----

class FlowOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowOptimality, CapacityMatchesBruteForceOnTinyInstances) {
  // Exhaustively enumerate all block->replica assignments on tiny instances
  // and compare the optimal atomic makespan with the flow bound: the
  // fractional capacity can never exceed the atomic optimum.
  dc::Rng rng(GetParam());
  const std::uint32_t nodes = 2 + static_cast<std::uint32_t>(rng.bounded(2));
  const std::size_t blocks = 3 + rng.bounded(4);  // <= 6 blocks, 2 hosts each

  std::vector<datanet::graph::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    datanet::graph::BlockVertex v;
    v.block_id = j;
    v.weight = 1 + rng.bounded(100);
    while (v.hosts.size() < 2) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  const datanet::graph::BipartiteGraph g(nodes, bs);

  // Brute force over 2^blocks replica choices.
  std::uint64_t best = ~0ull;
  for (std::uint64_t mask = 0; mask < (1ull << blocks); ++mask) {
    std::vector<std::uint64_t> load(nodes, 0);
    for (std::size_t j = 0; j < blocks; ++j) {
      const auto host = g.block(j).hosts[(mask >> j) & 1];
      load[host] += g.block(j).weight;
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
  }

  const auto res = datanet::graph::balanced_assignment(g);
  const auto flow_makespan =
      *std::max_element(res.node_load.begin(), res.node_load.end());
  EXPECT_LE(res.fractional_capacity, best);  // fractional <= atomic optimum
  // Rounded solution within one max block weight of the optimum.
  std::uint64_t max_w = 0;
  for (std::size_t j = 0; j < blocks; ++j) {
    max_w = std::max(max_w, g.block(j).weight);
  }
  EXPECT_LE(flow_makespan, best + max_w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowOptimality,
                         ::testing::Range<std::uint64_t>(300, 320));

// ---- parallel vs serial ElasticMap builds ----

class ParallelBuild : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParallelBuild, IdenticalToSerial) {
  datanet::dfs::DfsOptions dopt;
  dopt.block_size = 8 * 1024;
  dopt.seed = 3;
  datanet::dfs::MiniDfs fs(datanet::dfs::ClusterTopology::flat(4), dopt);
  dw::MovieGenOptions gopt;
  gopt.num_movies = 120;
  gopt.num_records = 8000;
  dw::ingest(fs, "/log", dw::MovieLogGenerator(gopt).generate());

  const auto serial =
      de::ElasticMapArray::build(fs, "/log", {.alpha = 0.3, .build_threads = 1});
  const auto parallel = de::ElasticMapArray::build(
      fs, "/log", {.alpha = 0.3, .build_threads = GetParam()});

  ASSERT_EQ(parallel.num_blocks(), serial.num_blocks());
  EXPECT_EQ(parallel.raw_bytes(), serial.raw_bytes());
  for (std::uint64_t b = 0; b < serial.num_blocks(); ++b) {
    EXPECT_EQ(parallel.block_meta(b).serialize(),
              serial.block_meta(b).serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelBuild, ::testing::Values(2u, 4u, 8u));

// ---- engine conservation across random split layouts ----

class EngineLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineLaws, RecordAndByteConservation) {
  dc::Rng rng(GetParam());
  // Random record block content across random node placements.
  std::vector<std::string> blocks;
  std::uint64_t total_records = 0, total_bytes = 0;
  const auto nblocks = 2 + rng.bounded(10);
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    std::string data;
    const auto recs = rng.bounded(50);
    for (std::uint64_t r = 0; r < recs; ++r) {
      const auto line = std::to_string(rng.bounded(100000)) + "\tk" +
                        std::to_string(rng.bounded(5)) + "\tpayload " +
                        std::to_string(r);
      data += line + "\n";
      ++total_records;
    }
    total_bytes += data.size();
    blocks.push_back(std::move(data));
  }

  const std::uint32_t nodes = 2 + static_cast<std::uint32_t>(rng.bounded(4));
  std::vector<datanet::mapred::InputSplit> splits;
  for (const auto& b : blocks) {
    splits.push_back({.node = static_cast<std::uint32_t>(rng.bounded(nodes)),
                      .data = b,
                      .charged_bytes = 0});
  }

  datanet::mapred::Job job;
  job.config.num_reducers = 3;
  struct CountMapper final : datanet::mapred::Mapper {
    void map(const dw::RecordView& r, datanet::mapred::Emitter& out) override {
      out.emit(std::string(r.key), "1");
    }
  };
  struct CountReducer final : datanet::mapred::Reducer {
    void reduce(const datanet::mapred::Key& key,
                std::span<const datanet::mapred::Value> values,
                datanet::mapred::Emitter& out) override {
      out.emit(key, std::to_string(values.size()));
    }
  };
  job.mapper_factory = [] { return std::make_unique<CountMapper>(); };
  job.reducer_factory = [] { return std::make_unique<CountReducer>(); };

  const datanet::mapred::Engine engine({.num_nodes = nodes});
  const auto report = engine.run(job, splits);
  EXPECT_EQ(report.input_records, total_records);
  EXPECT_EQ(report.input_bytes, total_bytes);
  // Without a combiner, one intermediate pair per record.
  EXPECT_EQ(report.map_output_pairs, total_records);
  // Output counts sum to the record count.
  std::uint64_t counted = 0;
  for (const auto& [_, v] : report.output) {
    counted += std::stoull(v);
  }
  EXPECT_EQ(counted, total_records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLaws,
                         ::testing::Range<std::uint64_t>(400, 412));

// ---- DFS invariants under random write/decommission sequences ----

class DfsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfsFuzz, ReplicaInvariantsSurviveFailures) {
  dc::Rng rng(GetParam());
  datanet::dfs::DfsOptions o;
  o.block_size = 512;
  o.replication = 2;
  o.seed = GetParam();
  const std::uint32_t nodes = 5 + static_cast<std::uint32_t>(rng.bounded(6));
  datanet::dfs::MiniDfs fs(datanet::dfs::ClusterTopology::flat(nodes), o);

  auto w = fs.create("/f");
  const auto recs = 100 + rng.bounded(300);
  for (std::uint64_t i = 0; i < recs; ++i) {
    w.append(std::string(10 + rng.bounded(60), 'x'));
  }
  w.close();

  // Fail up to nodes-2 random nodes.
  const auto failures = rng.bounded(nodes - 2);
  for (std::uint64_t f = 0; f < failures; ++f) {
    (void)fs.decommission(
        static_cast<datanet::dfs::NodeId>(rng.bounded(nodes)));
  }

  // Invariants: replicas distinct, on active nodes, count == min(repl,
  // active); inventories consistent with the replica map.
  for (const auto b : fs.blocks_of("/f")) {
    const auto& reps = fs.block(b).replicas;
    std::set<datanet::dfs::NodeId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), reps.size());
    EXPECT_EQ(reps.size(),
              std::min<std::size_t>(o.replication, fs.num_active_nodes()));
    for (const auto n : reps) {
      EXPECT_TRUE(fs.is_active(n));
      const auto& inv = fs.blocks_on(n);
      EXPECT_NE(std::find(inv.begin(), inv.end(), b), inv.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsFuzz,
                         ::testing::Range<std::uint64_t>(500, 512));

// ---- job output invariance under split permutation and placement ----

#include "apps/distinct_users.hpp"
#include "apps/histogram.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"

class JobInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JobInvariance, OutputIndependentOfSplitLayout) {
  // Generate one record stream, then run each job under two very different
  // split layouts (few big splits on few nodes vs many small splits spread
  // wide). Real MapReduce semantics demand identical outputs.
  dc::Rng rng(GetParam());
  std::vector<std::string> lines;
  for (int i = 0; i < 400; ++i) {
    lines.push_back(std::to_string(rng.bounded(10000)) + "\tk" +
                    std::to_string(rng.bounded(4)) + "\tclient=u" +
                    std::to_string(rng.bounded(40)) + " word" +
                    std::to_string(rng.bounded(30)) + " text here");
  }

  const auto layout = [&](std::size_t pieces, std::uint32_t nodes,
                          std::vector<std::string>* store) {
    store->assign(pieces, "");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      (*store)[i % pieces] += lines[i] + "\n";
    }
    std::vector<datanet::mapred::InputSplit> splits;
    for (std::size_t p = 0; p < pieces; ++p) {
      splits.push_back({.node = static_cast<std::uint32_t>(p % nodes),
                        .data = (*store)[p],
                        .charged_bytes = 0});
    }
    return splits;
  };

  std::vector<std::string> store_a, store_b;
  const auto splits_a = layout(2, 1, &store_a);
  const auto splits_b = layout(16, 8, &store_b);

  const std::vector<datanet::mapred::Job> jobs = {
      datanet::apps::make_word_count_job(),
      datanet::apps::make_word_histogram_job(),
      datanet::apps::make_topk_search_job("word1 text here", 5),
      datanet::apps::make_distinct_users_job("client="),
  };
  const datanet::mapred::Engine e1({.num_nodes = 1});
  const datanet::mapred::Engine e8({.num_nodes = 8});
  for (const auto& job : jobs) {
    const auto ra = e1.run(job, splits_a);
    const auto rb = e8.run(job, splits_b);
    EXPECT_EQ(ra.output, rb.output) << job.config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobInvariance,
                         ::testing::Range<std::uint64_t>(600, 606));
