// Tests for the four paper workloads (MovingAverage, TopKSearch, WordCount,
// AggregateWordHistogram) and the selection job — each validated against a
// straightforward serial computation.

#include <gtest/gtest.h>

#include <charconv>
#include <map>
#include <unordered_map>

#include "apps/filter.hpp"
#include "apps/histogram.hpp"
#include "apps/moving_average.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "common/string_util.hpp"
#include "mapred/engine.hpp"

namespace da = datanet::apps;
namespace dm = datanet::mapred;

namespace {

std::string lines(std::initializer_list<const char*> ls) {
  std::string out;
  for (const char* l : ls) {
    out += l;
    out += '\n';
  }
  return out;
}

dm::JobReport run1(const dm::Job& job, const std::string& data,
                   std::uint32_t nodes = 1) {
  dm::Engine engine({.num_nodes = nodes});
  return engine.run(job, {{.node = 0, .data = data, .charged_bytes = 0}});
}

}  // namespace

// ---- word count ----

TEST(WordCount, CountsMatchSerial) {
  const auto data = lines({
      "1\tm\tthe cat and the dog",
      "2\tm\tThe CAT sat",
  });
  const auto report = run1(da::make_word_count_job(), data);
  EXPECT_EQ(report.output.at("the"), "3");
  EXPECT_EQ(report.output.at("cat"), "2");
  EXPECT_EQ(report.output.at("dog"), "1");
  EXPECT_EQ(report.output.at("sat"), "1");
  EXPECT_EQ(report.output.at("and"), "1");
}

TEST(WordCount, MultiSplitAggregation) {
  const auto b1 = lines({"1\tm\talpha beta"});
  const auto b2 = lines({"2\tm\tbeta gamma", "3\tm\tbeta"});
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(da::make_word_count_job(),
                                 {{.node = 0, .data = b1, .charged_bytes = 0},
                                  {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("beta"), "3");
  EXPECT_EQ(report.output.at("alpha"), "1");
  EXPECT_EQ(report.output.at("gamma"), "1");
}

TEST(WordCount, EmptyPayloads) {
  const auto report = run1(da::make_word_count_job(), lines({"1\tm\t"}));
  EXPECT_TRUE(report.output.empty());
}

// ---- moving average ----

TEST(MovingAverage, WindowAverages) {
  // Window = 100 s. ts 0-99 -> window 0, ts 100-199 -> window 1.
  const auto data = lines({
      "10\tm\trating=4 text",
      "20\tm\trating=6 text",
      "150\tm\trating=9 text",
  });
  const auto report = run1(da::make_moving_average_job(100), data);
  EXPECT_EQ(report.output.at("000000000000"), "5.0000");
  EXPECT_EQ(report.output.at("000000000001"), "9.0000");
}

TEST(MovingAverage, IgnoresRecordsWithoutRating) {
  const auto data = lines({
      "10\tm\tno rating here",
      "20\tm\trating=8 ok",
  });
  const auto report = run1(da::make_moving_average_job(100), data);
  EXPECT_EQ(report.output.at("000000000000"), "8.0000");
  EXPECT_EQ(report.output.size(), 1u);
}

TEST(MovingAverage, PartialsCombineAcrossSplits) {
  const auto b1 = lines({"10\tm\trating=2 a"});
  const auto b2 = lines({"20\tm\trating=4 b", "30\tm\trating=6 c"});
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(da::make_moving_average_job(1000),
                                 {{.node = 0, .data = b1, .charged_bytes = 0},
                                  {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("000000000000"), "4.0000");
}

TEST(MovingAverage, RejectsZeroWindow) {
  EXPECT_THROW(da::make_moving_average_job(0), std::invalid_argument);
}

// ---- top-k search ----

TEST(TopK, BigramCosineProperties) {
  EXPECT_NEAR(da::bigram_cosine("hello world", "hello world"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(da::bigram_cosine("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(da::bigram_cosine("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(da::bigram_cosine("a", "a"), 0.0);  // no bigram in 1 char
  const double sim = da::bigram_cosine("the quick fox", "the quick dog");
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(da::bigram_cosine("abcd", "bcde"),
                   da::bigram_cosine("bcde", "abcd"));
}

TEST(TopK, FindsExactMatchFirst) {
  const auto data = lines({
      "1\tm\tcompletely different text here",
      "2\tm\tthe exact query string",
      "3\tm\tanother unrelated review",
  });
  const auto report =
      run1(da::make_topk_search_job("the exact query string", 2), data);
  ASSERT_TRUE(report.output.contains("topk_00"));
  EXPECT_NE(report.output.at("topk_00").find("the exact query string"),
            std::string::npos);
  EXPECT_EQ(report.output.at("topk_00").substr(0, 8), "1.000000");
}

TEST(TopK, ReturnsAtMostK) {
  const auto data = lines({
      "1\tm\taaa bbb", "2\tm\taaa ccc", "3\tm\taaa ddd", "4\tm\taaa eee",
  });
  const auto report = run1(da::make_topk_search_job("aaa", 2), data);
  EXPECT_TRUE(report.output.contains("topk_00"));
  EXPECT_TRUE(report.output.contains("topk_01"));
  EXPECT_FALSE(report.output.contains("topk_02"));
}

TEST(TopK, GlobalMergeAcrossSplits) {
  // The best match lives in split 2; it must win the global merge.
  const auto b1 = lines({"1\tm\tzzz yyy xxx"});
  const auto b2 = lines({"2\tm\tsearch target text"});
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(da::make_topk_search_job("search target text", 1),
                                 {{.node = 0, .data = b1, .charged_bytes = 0},
                                  {.node = 1, .data = b2, .charged_bytes = 0}});
  ASSERT_TRUE(report.output.contains("topk_00"));
  EXPECT_NE(report.output.at("topk_00").find("search target"), std::string::npos);
}

TEST(TopK, ScoresDescending) {
  const auto data = lines({
      "1\tm\tsearch target text",
      "2\tm\tsearch target other",
      "3\tm\tnothing alike qq",
  });
  const auto report = run1(da::make_topk_search_job("search target text", 3), data);
  double prev = 2.0;
  for (const auto& [k, v] : report.output) {
    double score = 0.0;
    std::from_chars(v.data(), v.data() + v.find('\t'), score);
    EXPECT_LE(score, prev);
    prev = score;
  }
}

TEST(TopK, RejectsBadArgs) {
  EXPECT_THROW(da::make_topk_search_job("q", 0), std::invalid_argument);
  EXPECT_THROW(da::make_topk_search_job("", 3), std::invalid_argument);
}

TEST(TopK, IsTheMostCpuIntensiveJob) {
  // The Fig. 5a ordering rests on this cost-model ordering.
  const auto topk = da::make_topk_search_job("q", 1);
  const auto wc = da::make_word_count_job();
  const auto ma = da::make_moving_average_job(100);
  EXPECT_GT(topk.config.cost.cpu_s_per_mib, wc.config.cost.cpu_s_per_mib);
  EXPECT_GT(wc.config.cost.cpu_s_per_mib, ma.config.cost.cpu_s_per_mib);
}

// ---- histogram ----

TEST(Histogram, LengthBuckets) {
  const auto data = lines({
      "1\tm\tab abc ab",
      "2\tm\tabcd ab",
  });
  const auto report = run1(da::make_word_histogram_job(), data);
  EXPECT_EQ(report.output.at("len_002"), "3");
  EXPECT_EQ(report.output.at("len_003"), "1");
  EXPECT_EQ(report.output.at("len_004"), "1");
  EXPECT_EQ(report.output.at("total_words"), "5");
}

TEST(Histogram, AggregatesAcrossSplits) {
  const auto b1 = lines({"1\tm\taa bb"});
  const auto b2 = lines({"2\tm\tcc"});
  dm::Engine engine({.num_nodes = 2});
  const auto report = engine.run(da::make_word_histogram_job(),
                                 {{.node = 0, .data = b1, .charged_bytes = 0},
                                  {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("len_002"), "3");
  EXPECT_EQ(report.output.at("total_words"), "3");
}

// ---- filter ----

TEST(Filter, MatchPredicate) {
  const auto rv = datanet::workload::decode_record("1\tmovie_7\tx");
  ASSERT_TRUE(rv);
  EXPECT_TRUE(da::matches_subdataset(*rv, "movie_7"));
  EXPECT_FALSE(da::matches_subdataset(*rv, "movie_8"));
}

TEST(Filter, StatsJobSumsBytesPerKey) {
  const auto l1 = std::string("1\ta\txx");
  const auto l2 = std::string("2\tb\tyyy");
  const auto l3 = std::string("3\ta\tz");
  const auto data = l1 + "\n" + l2 + "\n" + l3 + "\n";
  const auto report = run1(da::make_filter_stats_job(""), data);
  EXPECT_EQ(report.output.at("a"), std::to_string(l1.size() + l3.size() + 2));
  EXPECT_EQ(report.output.at("b"), std::to_string(l2.size() + 1));
}

TEST(Filter, TargetedStatsOnlyOneKey) {
  const auto data = lines({"1\ta\txx", "2\tb\tyy", "3\ta\tzz"});
  const auto report = run1(da::make_filter_stats_job("a"), data);
  EXPECT_TRUE(report.output.contains("a"));
  EXPECT_FALSE(report.output.contains("b"));
}

TEST(Filter, IsIoBoundCostProfile) {
  const auto f = da::make_filter_stats_job("x");
  EXPECT_LT(f.config.cost.cpu_s_per_mib, f.config.cost.io_s_per_mib);
}
