// Tests for the three schedulers: the Hadoop locality baseline, Algorithm 1
// (DataNet), and the max-flow scheduler — including the balance invariants
// the paper's Figures 1b/5c/10 rest on.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

namespace dsch = datanet::scheduler;
namespace dg = datanet::graph;

namespace {

// Clustered workload: `hot` blocks carry almost all of the sub-dataset.
// Keep `hot` comfortably above the node count — with fewer heavy atomic
// blocks than nodes, no scheduler can balance (some nodes must stay idle),
// which is outside the regime the paper's figures cover.
dg::BipartiteGraph clustered_graph(std::uint32_t nodes, std::size_t blocks,
                                   std::size_t hot, std::uint64_t seed) {
  datanet::common::Rng rng(seed);
  std::vector<dg::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    dg::BlockVertex v;
    v.block_id = j;
    v.weight = j < hot ? 2000 + rng.bounded(8000) : rng.bounded(60);
    while (v.hosts.size() < 3) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  return dg::BipartiteGraph(nodes, std::move(bs));
}

std::vector<std::uint64_t> unit_bytes(const dg::BipartiteGraph& g) {
  return std::vector<std::uint64_t>(g.num_blocks(), 1 << 20);
}

std::vector<double> to_doubles(const std::vector<std::uint64_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

// ---- drain harness ----

TEST(Drain, AssignsEveryBlockExactlyOnce) {
  const auto g = clustered_graph(8, 64, 6, 3);
  dsch::LocalityScheduler sched(1);
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  EXPECT_EQ(rec.block_to_node.size(), 64u);
  EXPECT_EQ(rec.local_tasks + rec.remote_tasks, 64u);
  const auto total =
      std::accumulate(rec.node_load.begin(), rec.node_load.end(), 0ull);
  EXPECT_EQ(total, g.total_weight());
}

TEST(Drain, RejectsSizeMismatch) {
  const auto g = clustered_graph(4, 16, 2, 3);
  dsch::LocalityScheduler sched(1);
  std::vector<std::uint64_t> wrong(3, 1);
  EXPECT_THROW(dsch::drain(sched, g, wrong), std::invalid_argument);
}

TEST(Drain, InputBytesAccounted) {
  const auto g = clustered_graph(4, 16, 2, 9);
  dsch::LocalityScheduler sched(2);
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto total = std::accumulate(rec.node_input_bytes.begin(),
                                     rec.node_input_bytes.end(), 0ull);
  EXPECT_EQ(total, 16ull << 20);
}

// ---- locality scheduler ----

TEST(Locality, MostTasksAreLocal) {
  const auto g = clustered_graph(8, 128, 10, 5);
  dsch::LocalityScheduler sched(7);
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  // With 3 replicas on 8 nodes and fair round-robin requests, the vast
  // majority of assignments should be replica-local.
  EXPECT_GT(rec.local_tasks, 100u);
}

TEST(Locality, BlockCountsRoughlyEven) {
  const auto g = clustered_graph(8, 128, 10, 6);
  dsch::LocalityScheduler sched(8);
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  std::vector<int> counts(8, 0);
  for (const auto n : rec.block_to_node) ++counts[n];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*mx - *mn, 4);  // fair request order => near-equal task counts
}

TEST(Locality, ContentBlindSchedulingIsImbalanced) {
  // The motivating observation (Fig. 1b): with clustered content, locality
  // scheduling yields a wide max/min spread in sub-dataset bytes per node.
  const auto g = clustered_graph(16, 256, 48, 11);
  dsch::LocalityScheduler sched(3);
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto s = datanet::stats::summarize(to_doubles(rec.node_load));
  EXPECT_GT(s.max_over_mean(), 1.6);
}

TEST(Locality, DeterministicForSeed) {
  const auto g = clustered_graph(8, 64, 6, 13);
  dsch::LocalityScheduler a(42), b(42);
  const auto ra = dsch::drain(a, g, unit_bytes(g));
  const auto rb = dsch::drain(b, g, unit_bytes(g));
  EXPECT_EQ(ra.block_to_node, rb.block_to_node);
}

TEST(Locality, ResetsCleanlyBetweenJobs) {
  const auto g = clustered_graph(8, 64, 6, 14);
  dsch::LocalityScheduler sched(42);
  const auto ra = dsch::drain(sched, g, unit_bytes(g));
  const auto rb = dsch::drain(sched, g, unit_bytes(g));
  EXPECT_EQ(ra.block_to_node, rb.block_to_node);  // seed re-applied on reset
}

// ---- DataNet scheduler (Algorithm 1) ----

TEST(DataNetSched, BalancesClusteredWorkload) {
  const auto g = clustered_graph(16, 256, 48, 11);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto s = datanet::stats::summarize(to_doubles(rec.node_load));
  // Fig. 10 regime: max ~0.9..1.3 of mean, min >= ~0.5 of mean.
  EXPECT_LT(s.max_over_mean(), 1.35);
  EXPECT_GT(s.min_over_mean(), 0.5);
}

TEST(DataNetSched, MuchBetterThanLocalityOnClusteredData) {
  const auto g = clustered_graph(16, 256, 48, 19);
  dsch::LocalityScheduler base(3);
  dsch::DataNetScheduler dn;
  const auto rb = dsch::drain(base, g, unit_bytes(g));
  const auto rd = dsch::drain(dn, g, unit_bytes(g));
  const auto sb = datanet::stats::summarize(to_doubles(rb.node_load));
  const auto sd = datanet::stats::summarize(to_doubles(rd.node_load));
  EXPECT_LT(sd.coeff_variation(), 0.6 * sb.coeff_variation());
}

TEST(DataNetSched, TracksNodeWorkloads) {
  const auto g = clustered_graph(8, 64, 6, 23);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  EXPECT_EQ(sched.node_workloads(), rec.node_load);
  EXPECT_NEAR(sched.average_target(),
              static_cast<double>(g.total_weight()) / 8.0, 1e-9);
}

TEST(DataNetSched, PrefersLocalBlocks) {
  const auto g = clustered_graph(8, 128, 8, 29);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  EXPECT_GT(rec.local_tasks, rec.remote_tasks);
}

TEST(DataNetSched, DeterministicAcrossRuns) {
  const auto g = clustered_graph(8, 64, 6, 31);
  dsch::DataNetScheduler a, b;
  EXPECT_EQ(dsch::drain(a, g, unit_bytes(g)).block_to_node,
            dsch::drain(b, g, unit_bytes(g)).block_to_node);
}

TEST(DataNetSched, UniformWeightsStayUniform) {
  // Sanity: when content is NOT clustered, Algorithm 1 keeps the balance.
  datanet::common::Rng rng(37);
  std::vector<dg::BlockVertex> bs;
  for (std::size_t j = 0; j < 64; ++j) {
    dg::BlockVertex v;
    v.block_id = j;
    v.weight = 100;
    while (v.hosts.size() < 3) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(8));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  const dg::BipartiteGraph g(8, bs);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto [mn, mx] =
      std::minmax_element(rec.node_load.begin(), rec.node_load.end());
  EXPECT_EQ(*mx, *mn);  // 8 blocks of weight 100 each
}

TEST(DataNetSched, NoTasksReturnsNullopt) {
  const dg::BipartiteGraph g(4, {});
  dsch::DataNetScheduler sched;
  sched.reset(g);
  EXPECT_FALSE(sched.next_task(0));
}

TEST(DataNetSched, RequestBeforeResetIsSafe) {
  dsch::DataNetScheduler sched;
  EXPECT_FALSE(sched.next_task(0));
}

// ---- flow scheduler ----

TEST(FlowSched, BalancesAtLeastAsWellAsGreedy) {
  const auto g = clustered_graph(16, 256, 48, 41);
  dsch::DataNetScheduler greedy;
  dsch::FlowScheduler flow;
  const auto rg = dsch::drain(greedy, g, unit_bytes(g));
  const auto rf = dsch::drain(flow, g, unit_bytes(g));
  const auto mg = *std::max_element(rg.node_load.begin(), rg.node_load.end());
  const auto mf = *std::max_element(rf.node_load.begin(), rf.node_load.end());
  // Allow small slack: drain()'s request order can trigger stealing.
  EXPECT_LE(static_cast<double>(mf), 1.15 * static_cast<double>(mg));
}

TEST(FlowSched, CertifiesFractionalCapacity) {
  const auto g = clustered_graph(8, 64, 4, 43);
  dsch::FlowScheduler sched;
  sched.reset(g);
  const double ideal =
      static_cast<double>(g.total_weight()) / static_cast<double>(8);
  EXPECT_GE(sched.fractional_capacity(), static_cast<std::uint64_t>(ideal));
}

TEST(FlowSched, AssignsEverything) {
  const auto g = clustered_graph(8, 96, 8, 47);
  dsch::FlowScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto total =
      std::accumulate(rec.node_load.begin(), rec.node_load.end(), 0ull);
  EXPECT_EQ(total, g.total_weight());
}

// Property sweep: Algorithm 1's balance holds across cluster/dataset sizes.
class DataNetBalanceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {};

TEST_P(DataNetBalanceSweep, CoefficientOfVariationSmall) {
  const auto [nodes, blocks] = GetParam();
  const auto g = clustered_graph(nodes, blocks, std::max<std::size_t>(blocks / 4, std::size_t{nodes} * 2),
                                 nodes * 131 + blocks);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain(sched, g, unit_bytes(g));
  const auto s = datanet::stats::summarize(to_doubles(rec.node_load));
  EXPECT_LT(s.coeff_variation(), 0.35)
      << nodes << " nodes / " << blocks << " blocks";
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DataNetBalanceSweep,
    ::testing::Combine(::testing::Values<std::uint32_t>(4, 16, 32),
                       ::testing::Values<std::size_t>(64, 256, 512)));
