// Tests for the paper's core contribution: the single-scan dominant
// separator (Section III-B), BlockMeta (hashmap + bloom hybrid), the
// ElasticMapArray with Eq. 5/6, and the accuracy metric χ.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "elasticmap/block_meta.hpp"
#include "elasticmap/cost_model.hpp"
#include "elasticmap/elastic_map.hpp"
#include "elasticmap/separator.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"

namespace de = datanet::elasticmap;
namespace dw = datanet::workload;

// ---- cost model (Eq. 5) ----

TEST(CostModel, PureBloomAndPureMapLimits) {
  de::CostModelParams p;
  p.bloom_fpp = 0.01;
  p.hashmap_record_bits = 96;
  p.hashmap_load_factor = 0.75;

  p.alpha = 0.0;  // everything in the bloom filter
  EXPECT_NEAR(de::elasticmap_cost_bits(1000, p), 1000 * 9.585, 10.0);

  p.alpha = 1.0;  // everything in the hash map
  EXPECT_NEAR(de::elasticmap_cost_bits(1000, p), 1000 * 96 / 0.75, 1.0);
}

TEST(CostModel, MonotoneInAlpha) {
  de::CostModelParams p;
  double prev = 0.0;
  for (double a = 0.0; a <= 1.0; a += 0.1) {
    p.alpha = a;
    const double c = de::elasticmap_cost_bits(1000, p);
    EXPECT_GT(c, prev);  // hash map bits dominate bloom bits per key
    prev = c;
  }
}

TEST(CostModel, BytesRoundsUp) {
  de::CostModelParams p;
  p.alpha = 0.0;
  EXPECT_EQ(de::elasticmap_cost_bytes(1, p),
            static_cast<std::uint64_t>(
                std::ceil(de::elasticmap_cost_bits(1, p) / 8.0)));
}

TEST(CostModel, AlphaForBudgetInverts) {
  de::CostModelParams p;
  for (double target : {0.2, 0.5, 0.8}) {
    p.alpha = target;
    const auto budget = de::elasticmap_cost_bytes(5000, p);
    const double recovered = de::alpha_for_budget(5000, budget, p);
    EXPECT_NEAR(recovered, target, 0.01);
  }
}

TEST(CostModel, AlphaForBudgetClamps) {
  de::CostModelParams p;
  EXPECT_DOUBLE_EQ(de::alpha_for_budget(1000, 0, p), 0.0);
  EXPECT_DOUBLE_EQ(de::alpha_for_budget(1000, 1 << 30, p), 1.0);
}

TEST(CostModel, RejectsBadParams) {
  de::CostModelParams p;
  p.alpha = 1.5;
  EXPECT_THROW((void)de::elasticmap_cost_bits(10, p), std::invalid_argument);
  p = {};
  p.bloom_fpp = 0.0;
  EXPECT_THROW((void)de::elasticmap_cost_bits(10, p), std::invalid_argument);
  p = {};
  p.hashmap_load_factor = 0.0;
  EXPECT_THROW((void)de::elasticmap_cost_bits(10, p), std::invalid_argument);
}

// ---- dominant separator ----

TEST(Separator, FibonacciBucketGeometry) {
  de::SeparatorOptions o;
  o.bucket_unit = 1024;
  o.bucket_max = 34 * 1024;
  const de::DominantSeparator s(o);
  // Edges: 1,2,3,5,8,13,21,34 KiB
  ASSERT_EQ(s.bucket_edges().size(), 8u);
  EXPECT_EQ(s.bucket_edges()[0], 1024u);
  EXPECT_EQ(s.bucket_edges()[4], 8u * 1024);
  EXPECT_EQ(s.bucket_edges()[7], 34u * 1024);
  EXPECT_EQ(s.bucket_counts().size(), 9u);
}

TEST(Separator, ForBlockSizePaperRatios) {
  const auto o = de::SeparatorOptions::for_block_size(64ull << 20);
  EXPECT_EQ(o.bucket_unit, 1024u);  // 1 KiB for a 64 MiB block, as the paper
  const de::DominantSeparator big(o);
  // "Tens of buckets could be sufficient" (Section III-B).
  EXPECT_GE(big.bucket_edges().size(), 8u);
  EXPECT_LE(big.bucket_edges().size(), 32u);
  // Small scaled-down blocks must still get a usable bucket ladder.
  const auto s = de::SeparatorOptions::for_block_size(16 * 1024);
  const de::DominantSeparator sep(s);
  EXPECT_GE(sep.bucket_edges().size(), 6u);
}

TEST(Separator, AccumulatesSizes) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  s.add(1, 5);
  s.add(1, 7);
  s.add(2, 30);
  EXPECT_EQ(s.sizes().at(1), 12u);
  EXPECT_EQ(s.sizes().at(2), 30u);
  EXPECT_EQ(s.num_subdatasets(), 2u);
  EXPECT_EQ(s.total_bytes(), 42u);
}

TEST(Separator, ZeroByteAddIgnored) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  s.add(1, 0);
  EXPECT_EQ(s.num_subdatasets(), 0u);
}

TEST(Separator, BucketCountsTrackGrowth) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  // Sizes cross bucket boundaries as they grow: counts must move.
  s.add(1, 5);  // bucket (0,10)
  EXPECT_EQ(s.bucket_counts()[0], 1u);
  s.add(1, 10);  // now 15 -> bucket [10,20)
  EXPECT_EQ(s.bucket_counts()[0], 0u);
  EXPECT_EQ(s.bucket_counts()[1], 1u);
  s.add(1, 1000);  // top bucket
  EXPECT_EQ(s.bucket_counts().back(), 1u);
  // Total count conserved at 1.
  std::uint64_t total = 0;
  for (const auto c : s.bucket_counts()) total += c;
  EXPECT_EQ(total, 1u);
}

TEST(Separator, ThresholdKeepsRoughlyAlphaFraction) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 1000});
  // 100 sub-datasets: sizes 1..100 * 10 (spread over many buckets).
  for (std::uint64_t i = 1; i <= 100; ++i) s.add(i, i * 10);
  const auto threshold = s.threshold_for_fraction(0.2);
  const auto kept = s.count_at_or_above(threshold);
  EXPECT_LE(kept, 20u);
  EXPECT_GT(kept, 0u);
}

TEST(Separator, ThresholdAlphaOneKeepsAll) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  for (std::uint64_t i = 1; i <= 20; ++i) s.add(i, i * 7);
  EXPECT_EQ(s.threshold_for_fraction(1.0), 0u);
}

TEST(Separator, ThresholdEmptyIsZero) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  EXPECT_EQ(s.threshold_for_fraction(0.5), 0u);
}

TEST(Separator, ThresholdRejectsBadAlpha) {
  de::DominantSeparator s({.bucket_unit = 10, .bucket_max = 100});
  EXPECT_THROW((void)s.threshold_for_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.threshold_for_fraction(1.1), std::invalid_argument);
}

TEST(Separator, RejectsBadGeometry) {
  EXPECT_THROW(de::DominantSeparator({.bucket_unit = 0, .bucket_max = 10}),
               std::invalid_argument);
  EXPECT_THROW(de::DominantSeparator({.bucket_unit = 100, .bucket_max = 10}),
               std::invalid_argument);
}

TEST(Separator, SkewedInputSeparatesDominants) {
  // Content-clustered block: 3 dominant sub-datasets and a long tail.
  de::DominantSeparator s(de::SeparatorOptions::for_block_size(1 << 20));
  s.add(1001, 200000);
  s.add(1002, 150000);
  s.add(1003, 90000);
  for (std::uint64_t i = 0; i < 500; ++i) s.add(i, 20 + i % 50);
  const auto threshold = s.threshold_for_fraction(0.01);
  EXPECT_EQ(s.count_at_or_above(threshold), 3u);
}

// ---- BlockMeta ----

namespace {
de::BlockMeta make_meta() {
  std::unordered_map<dw::SubDatasetId, std::uint64_t> dominant{
      {11, 5000}, {22, 3000}, {33, 1500}};
  std::vector<dw::SubDatasetId> tail{101, 102, 103, 104};
  return de::BlockMeta(std::move(dominant), tail, 0.01, /*delta=*/1500);
}
}  // namespace

TEST(BlockMeta, ExactLookups) {
  const auto m = make_meta();
  EXPECT_EQ(m.exact_size(11), 5000u);
  EXPECT_EQ(m.exact_size(22), 3000u);
  EXPECT_FALSE(m.exact_size(101));  // tail entries are not exact
  EXPECT_FALSE(m.exact_size(999));
}

TEST(BlockMeta, TailMembership) {
  const auto m = make_meta();
  for (dw::SubDatasetId id : {101, 102, 103, 104}) {
    EXPECT_TRUE(m.maybe_in_tail(id));
  }
}

TEST(BlockMeta, EstimateSizePaths) {
  const auto m = make_meta();
  bool exact = false;
  EXPECT_EQ(m.estimate_size(11, &exact), 5000u);
  EXPECT_TRUE(exact);
  EXPECT_EQ(m.estimate_size(101, &exact), 1500u);  // delta for bloom hits
  EXPECT_FALSE(exact);
}

TEST(BlockMeta, AbsentIdEstimatesZeroAlmostAlways) {
  const auto m = make_meta();
  int nonzero = 0;
  for (std::uint64_t id = 100000; id < 101000; ++id) {
    nonzero += (m.estimate_size(id) != 0);
  }
  EXPECT_LE(nonzero, 30);  // bloom false positives only
}

TEST(BlockMeta, Counters) {
  const auto m = make_meta();
  EXPECT_EQ(m.num_dominant(), 3u);
  EXPECT_EQ(m.num_tail(), 4u);
  EXPECT_EQ(m.delta(), 1500u);
  EXPECT_GT(m.memory_bytes(), 0u);
}

TEST(BlockMeta, SerializeRoundTrip) {
  const auto m = make_meta();
  const auto bytes = m.serialize();
  EXPECT_LE(bytes.size(), m.memory_bytes());
  const auto n = de::BlockMeta::deserialize(bytes);
  EXPECT_EQ(n.delta(), m.delta());
  EXPECT_EQ(n.num_dominant(), 3u);
  EXPECT_EQ(n.exact_size(11), 5000u);
  EXPECT_TRUE(n.maybe_in_tail(103));
}

TEST(BlockMeta, DeserializeRejectsGarbage) {
  EXPECT_THROW(de::BlockMeta::deserialize(""), std::invalid_argument);
  EXPECT_THROW(de::BlockMeta::deserialize("xxxxxxxxxxxxxxxxxxxxxxxxxxx"),
               std::invalid_argument);
  auto bytes = make_meta().serialize();
  bytes.resize(30);
  EXPECT_THROW(de::BlockMeta::deserialize(bytes), std::invalid_argument);
}

TEST(BlockMeta, EmptyTailStillConstructs) {
  std::unordered_map<dw::SubDatasetId, std::uint64_t> dominant{{1, 10}};
  const de::BlockMeta m(std::move(dominant), {}, 0.01, 10);
  EXPECT_EQ(m.num_tail(), 0u);
  EXPECT_EQ(m.estimate_size(1), 10u);
}

// ---- ElasticMapArray over a real dataset ----

namespace {
struct Fixture {
  datanet::dfs::MiniDfs dfs;
  std::string path = "/movies";
  dw::MovieLogGenerator gen;
  dw::GroundTruth truth;

  static datanet::dfs::MiniDfs make_dfs() {
    datanet::dfs::DfsOptions o;
    o.block_size = 16 * 1024;
    o.replication = 3;
    o.seed = 77;
    return datanet::dfs::MiniDfs(datanet::dfs::ClusterTopology::flat(8), o);
  }
  static dw::MovieLogGenerator make_gen() {
    dw::MovieGenOptions o;
    o.num_movies = 200;
    o.num_records = 20000;
    o.seed = 99;
    return dw::MovieLogGenerator(o);
  }

  Fixture()
      : dfs(make_dfs()),
        gen(make_gen()),
        truth((dw::ingest(dfs, path, gen.generate()), dfs), path) {}
};
}  // namespace

TEST(ElasticMapArray, BuildsOneMetaPerBlock) {
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {});
  EXPECT_EQ(em.num_blocks(), f.dfs.blocks_of(f.path).size());
  EXPECT_EQ(em.raw_bytes(), f.truth.total_bytes());
}

TEST(ElasticMapArray, DominantSizesAreExactTruth) {
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.3});
  for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
    for (const auto& [id, size] : em.block_meta(b).dominant()) {
      EXPECT_EQ(size, f.truth.size_in_block(b, id));
    }
  }
}

TEST(ElasticMapArray, EveryTruthIdIsVisible) {
  // No false negatives: every sub-dataset present in a block must be found
  // either exactly or via the bloom filter.
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.2});
  for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
    for (const auto id : f.truth.ids_by_size()) {
      if (f.truth.size_in_block(b, id) == 0) continue;
      EXPECT_GT(em.block_meta(b).estimate_size(id), 0u);
    }
  }
}

TEST(ElasticMapArray, EstimateNeverFarBelowActual) {
  // Dominant shares are exact and bloom has no false negatives, so the
  // Eq. 6 estimate can undershoot only on tail shares, each by at most the
  // gap between the entry and the block's delta (<= the bucket threshold).
  // Require: estimate >= 40% of actual, and never zero for a present id.
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.3});
  for (const auto id : f.truth.ids_by_size()) {
    const auto est = em.estimate_total_size(id);
    EXPECT_GT(est, 0u);
    EXPECT_GE(static_cast<double>(est),
              0.4 * static_cast<double>(f.truth.total_size(id)));
  }
}

TEST(ElasticMapArray, LargeSubdatasetsEstimatedAccurately) {
  // Fig. 9's shape: the hottest movies are dominant nearly everywhere, so
  // their totals are nearly exact.
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.3});
  const auto ids = f.truth.ids_by_size();
  for (std::size_t r = 0; r < 3; ++r) {
    const double actual = static_cast<double>(f.truth.total_size(ids[r]));
    const double est = static_cast<double>(em.estimate_total_size(ids[r]));
    EXPECT_LT((est - actual) / actual, 0.25) << "rank " << r;
  }
}

TEST(ElasticMapArray, DistributionOmitsIrrelevantBlocks) {
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.3});
  const auto id = dw::subdataset_id(f.gen.movie_key(0));
  const auto dist = em.distribution(id);
  EXPECT_FALSE(dist.empty());
  EXPECT_LE(dist.size(), em.num_blocks());
  std::uint64_t sum = 0;
  for (const auto& share : dist) {
    EXPECT_GT(share.estimated_bytes, 0u);
    sum += share.estimated_bytes;
  }
  EXPECT_EQ(sum, em.estimate_total_size(id));
}

TEST(ElasticMapArray, HigherAlphaIsMoreAccurate) {
  // Table II trend: accuracy χ decreases as alpha decreases.
  Fixture f;
  std::vector<std::pair<dw::SubDatasetId, std::uint64_t>> totals;
  for (const auto id : f.truth.ids_by_size()) {
    totals.emplace_back(id, f.truth.total_size(id));
  }
  double prev_chi = -1.0;
  for (const double alpha : {0.05, 0.2, 0.5, 1.0}) {
    const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = alpha});
    const double chi = em.accuracy_chi(totals);
    EXPECT_GE(chi + 1e-9, prev_chi) << "alpha " << alpha;
    prev_chi = chi;
  }
  EXPECT_NEAR(prev_chi, 1.0, 1e-6);  // alpha = 1: everything exact
}

TEST(ElasticMapArray, HigherAlphaCostsMoreMemory) {
  Fixture f;
  std::uint64_t prev = 0;
  for (const double alpha : {0.05, 0.3, 1.0}) {
    const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = alpha});
    EXPECT_GT(em.memory_bytes(), prev);
    prev = em.memory_bytes();
  }
}

TEST(ElasticMapArray, RepresentationRatioAboveOne) {
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 0.3});
  EXPECT_GT(em.representation_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(
      em.representation_ratio(),
      static_cast<double>(em.raw_bytes()) / static_cast<double>(em.memory_bytes()));
}

TEST(ElasticMapArray, AlphaOneMeansNoTail) {
  Fixture f;
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 1.0});
  for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
    EXPECT_EQ(em.block_meta(b).num_tail(), 0u);
  }
}

TEST(ElasticMapArray, RejectsBadArgs) {
  Fixture f;
  EXPECT_THROW(de::ElasticMapArray::build(f.dfs, f.path, {.alpha = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(de::ElasticMapArray::build(f.dfs, "/missing", {}),
               std::out_of_range);
  const auto em = de::ElasticMapArray::build(f.dfs, f.path, {});
  EXPECT_THROW((void)em.block_meta(em.num_blocks()), std::out_of_range);
  EXPECT_THROW((void)em.block_id(em.num_blocks()), std::out_of_range);
}

// Property sweep: core invariants hold across alpha and fpp configurations.
class ElasticMapSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ElasticMapSweep, NoFalseNegativesAndBoundedUndershoot) {
  const auto [alpha, fpp] = GetParam();
  Fixture f;
  const auto em =
      de::ElasticMapArray::build(f.dfs, f.path, {.alpha = alpha, .bloom_fpp = fpp});
  const auto ids = f.truth.ids_by_size();
  for (std::size_t r = 0; r < ids.size(); r += 7) {
    const auto est = em.estimate_total_size(ids[r]);
    EXPECT_GT(est, 0u);  // present ids are never invisible
    EXPECT_GE(static_cast<double>(est),
              0.35 * static_cast<double>(f.truth.total_size(ids[r])));
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ElasticMapSweep,
                         ::testing::Combine(::testing::Values(0.1, 0.3, 0.6),
                                            ::testing::Values(0.001, 0.01, 0.05)));

// ---- Eq. 5 model vs measured memory ----

TEST(CostModel, PredictsMeasuredMemoryWithinFactorTwo) {
  // The Eq. 5 model and the actual serialized ElasticMap must agree on the
  // order of magnitude across alphas (model validation: k = 128 bits per
  // hash-map record matches our 16-byte entries).
  Fixture f;
  for (const double alpha : {0.2, 0.5, 0.8}) {
    const auto em = de::ElasticMapArray::build(f.dfs, f.path, {.alpha = alpha});
    // Count total per-block sub-datasets for the model input.
    std::uint64_t total_subdatasets = 0;
    for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
      total_subdatasets +=
          em.block_meta(b).num_dominant() + em.block_meta(b).num_tail();
    }
    de::CostModelParams p;
    // Effective alpha realized by the bucket separation (may differ from the
    // requested fraction at bucket granularity).
    std::uint64_t dominant = 0;
    for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
      dominant += em.block_meta(b).num_dominant();
    }
    p.alpha = static_cast<double>(dominant) /
              static_cast<double>(total_subdatasets);
    p.hashmap_record_bits = 128.0;  // 8B id + 8B size as serialized
    p.hashmap_load_factor = 1.0;    // serialization has no slack
    const auto predicted = de::elasticmap_cost_bytes(total_subdatasets, p);
    const auto measured = em.memory_bytes();
    EXPECT_LT(static_cast<double>(measured), 2.0 * static_cast<double>(predicted))
        << "alpha " << alpha;
    EXPECT_GT(static_cast<double>(measured), 0.4 * static_cast<double>(predicted))
        << "alpha " << alpha;
  }
}

TEST(BlockMeta, DeserializeRejectsHostileRecordCount) {
  // Header claiming ~2^60 dominant records in a tiny buffer: must be a typed
  // error, not a giant reserve.
  std::string bytes;
  const auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u64(0x454d4254u);  // magic
  put_u64(2);            // version
  bytes.push_back(0x00); // varint delta = 0
  // varint count = 2^60 (9 bytes of 0x80 continuation + terminator)
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(0x80));
  bytes.push_back(0x10);
  EXPECT_THROW(de::BlockMeta::deserialize(bytes), std::invalid_argument);
}

TEST(BlockMeta, DeserializeByteFlipFuzzNeverCrashes) {
  std::unordered_map<dw::SubDatasetId, std::uint64_t> dom;
  for (std::uint64_t i = 0; i < 12; ++i) dom[i * 0x9e3779b97f4a7c15ULL] = i * 100;
  const de::BlockMeta m(dom, {1, 2, 3, 4, 5}, 0.01, 7);
  const std::string good = m.serialize();
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    try {
      const auto g = de::BlockMeta::deserialize(bad);
      (void)g.estimate_size(42, nullptr);  // value flips parse fine
    } catch (const std::bad_alloc&) {
      FAIL() << "bad_alloc from flipped byte at " << pos;
    } catch (const std::invalid_argument&) {
    }
  }
  // Every strict prefix must be rejected cleanly too.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(de::BlockMeta::deserialize(std::string_view(good).substr(0, len)),
                 std::invalid_argument);
  }
}
