// SelectionRuntime equivalence and policy-seam properties (the PR's two
// invariants): a zero-fault runtime is byte-identical to the legacy
// run_selection for every scheduler on both datasets, and an empty-plan
// FaultPolicy never changes any report field. Plus unit coverage for the
// shared split/filter kernels the runtime and run_analysis now share.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/lpt.hpp"
#include "sim/selection_sim.hpp"

namespace dc = datanet::core;
namespace dfs = datanet::dfs;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;
namespace dsim = datanet::sim;

namespace {

dc::ExperimentConfig small_config() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 5;
  return cfg;
}

// All four production schedulers, fresh instances per call.
std::vector<std::unique_ptr<dsch::TaskScheduler>> all_schedulers() {
  std::vector<std::unique_ptr<dsch::TaskScheduler>> v;
  v.push_back(std::make_unique<dsch::LocalityScheduler>(7));
  v.push_back(std::make_unique<dsch::LptScheduler>());
  v.push_back(std::make_unique<dsch::DataNetScheduler>());
  v.push_back(std::make_unique<dsch::FlowScheduler>());
  return v;
}

void expect_identical(const dc::SelectionResult& a, const dc::SelectionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.assignment.block_to_node, b.assignment.block_to_node) << label;
  EXPECT_EQ(a.assignment.node_load, b.assignment.node_load) << label;
  EXPECT_EQ(a.assignment.node_input_bytes, b.assignment.node_input_bytes)
      << label;
  EXPECT_EQ(a.assignment.local_tasks, b.assignment.local_tasks) << label;
  EXPECT_EQ(a.assignment.remote_tasks, b.assignment.remote_tasks) << label;
  EXPECT_EQ(a.node_local_data, b.node_local_data) << label;
  EXPECT_EQ(a.node_filtered_bytes, b.node_filtered_bytes) << label;
  EXPECT_EQ(a.blocks_scanned, b.blocks_scanned) << label;
  EXPECT_EQ(a.lost_block_ids, b.lost_block_ids) << label;
  EXPECT_EQ(dm::report_to_json(a.report, /*include_output=*/true),
            dm::report_to_json(b.report, /*include_output=*/true))
      << label;
}

dc::SelectionResult runtime_clean(const dc::StoredDataset& ds,
                                  const std::string& key,
                                  dsch::TaskScheduler& sched,
                                  const dc::DataNet* net,
                                  const dc::ExperimentConfig& cfg) {
  dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing)
      .run(*ds.dfs, ds.path, key, sched, net, cfg);
}

}  // namespace

// ---- golden equivalence: runtime vs legacy run_selection ----

TEST(SelectionRuntime, MatchesLegacyOnMovieAllSchedulers) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];
  for (const auto& sched : all_schedulers()) {
    auto fresh = all_schedulers();  // legacy gets its own instances
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i]->name() != sched->name()) continue;
      const auto legacy =
          dc::run_selection(*ds.dfs, ds.path, key, *fresh[i], &net, cfg);
      const auto now = runtime_clean(ds, key, *sched, &net, cfg);
      expect_identical(now, legacy, std::string(sched->name()) + "/movie");
    }
  }
}

TEST(SelectionRuntime, MatchesLegacyOnGithubBaselineAndNet) {
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 32);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.6});
  const std::string key = "IssueEvent";
  for (const dc::DataNet* net_ptr : {static_cast<const dc::DataNet*>(nullptr),
                                     &net}) {
    for (const auto& sched : all_schedulers()) {
      auto fresh = all_schedulers();
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        if (fresh[i]->name() != sched->name()) continue;
        const auto legacy =
            dc::run_selection(*ds.dfs, ds.path, key, *fresh[i], net_ptr, cfg);
        const auto now = runtime_clean(ds, key, *sched, net_ptr, cfg);
        expect_identical(now, legacy,
                         std::string(sched->name()) +
                             (net_ptr ? "/github+net" : "/github-baseline"));
      }
    }
  }
}

// ---- property: an empty fault plan changes nothing ----

TEST(SelectionRuntime, EmptyFaultPlanIsInvisible) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean =
      dc::run_selection(*ds.dfs, ds.path, key, clean_sched, &net, cfg);

  // Full fault machinery — checksum-retry reads, injected faults — but the
  // plan is empty: every field must come out unchanged.
  dfs::FaultInjector injector(*ds.dfs, {});
  dsch::LocalityScheduler sched(7);
  const auto faulted = dc::run_selection_faulted(*ds.dfs, ds.path, key, sched,
                                                 &net, cfg, injector);
  expect_identical(faulted, clean, "empty-plan");
  EXPECT_EQ(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
}

// ---- property: reports are bit-identical at any engine thread count ----

TEST(SelectionRuntime, ThreadCountInvariance) {
  auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];

  cfg.execution_threads = 1;
  dsch::DataNetScheduler s1;
  const auto one = runtime_clean(ds, key, s1, &net, cfg);
  cfg.execution_threads = 4;
  dsch::DataNetScheduler s4;
  const auto four = runtime_clean(ds, key, s4, &net, cfg);
  EXPECT_EQ(dm::report_to_json(one.report, true),
            dm::report_to_json(four.report, true));
}

// ---- config validation ----

TEST(SelectionRuntime, ValidateRejectsImpossibleConfigs) {
  const auto base = small_config();
  auto cfg = base;
  cfg.num_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.block_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.slots_per_node = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.replication = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.replication = cfg.num_nodes + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(base.validate());
  // The dataset builders validate up front.
  auto bad = base;
  bad.replication = bad.num_nodes + 1;
  EXPECT_THROW(dc::make_movie_dataset(bad, 8, 50), std::invalid_argument);
}

// ---- event backend plugs into the same runtime ----

TEST(SelectionRuntime, EventBackendMatchesLegacySimulateSelection) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto graph = net.scheduling_graph(ds.hot_keys[0]);

  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = cfg.num_nodes;
  dsch::DataNetScheduler legacy_sched;
  const auto legacy =
      dsim::simulate_selection(*ds.dfs, graph, legacy_sched, opt);

  dsim::EventSimBackend backend(*ds.dfs, opt);
  dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  const dc::SelectionRuntime runtime(read, faults, backend);
  dsch::DataNetScheduler sched;
  const auto result = runtime.run_graph(*ds.dfs, graph, ds.hot_keys[0], sched,
                                        cfg, /*materialize=*/false);

  EXPECT_EQ(backend.last_sim().makespan, legacy.sim.makespan);
  EXPECT_EQ(backend.last_sim().task_finish, legacy.sim.task_finish);
  EXPECT_EQ(backend.last_sim().task_node, legacy.sim.task_node);
  EXPECT_EQ(result.assignment.node_load, legacy.node_filtered_bytes);
  EXPECT_EQ(result.report.total_seconds, legacy.sim.makespan);
  EXPECT_EQ(result.report.map_phase_seconds, legacy.sim.makespan);
}

// ---- shared kernels ----

TEST(SplitAtRecordBoundaries, EdgeCases) {
  using datanet::mapred::split_at_record_boundaries;

  EXPECT_TRUE(split_at_record_boundaries("", 4).empty());

  const std::string one = "1\tk\tpayload\n";
  auto chunks = split_at_record_boundaries(one, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], one);

  // pieces == 0 behaves like 1.
  chunks = split_at_record_boundaries(one, 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], one);

  // Multi-record data reassembles exactly and never splits mid-record.
  std::string data;
  for (int i = 0; i < 9; ++i) {
    data += std::to_string(i) + "\tkey" + std::to_string(i) + "\tpayload\n";
  }
  for (const std::uint32_t pieces : {1u, 2u, 3u, 8u, 100u}) {
    const auto parts = split_at_record_boundaries(data, pieces);
    std::string joined;
    for (const auto p : parts) {
      EXPECT_FALSE(p.empty());
      EXPECT_EQ(p.back(), '\n');
      joined.append(p);
    }
    EXPECT_EQ(joined, data) << "pieces=" << pieces;
  }

  // No trailing newline: the tail chunk keeps the partial last line intact.
  const std::string untailed = "1\ta\tx\n2\tb\ty";
  const auto parts = split_at_record_boundaries(untailed, 2);
  std::string joined;
  for (const auto p : parts) joined.append(p);
  EXPECT_EQ(joined, untailed);
}

TEST(FilterLines, FastPathMatchesFullDecode) {
  const std::string key = "ab";
  // Adversarial lines: prefix-of-key, key-is-prefix, malformed timestamps,
  // missing fields, empty key, key in payload position.
  const std::string data =
      "10\tab\tgood\n"
      "11\tabc\tlonger-key\n"
      "12\ta\tshorter-key\n"
      "xx\tab\tbad-timestamp\n"
      "13\tab\n"
      "14\t\tempty-key\n"
      "noTabs\n"
      "15\tzz\tab\n"
      "16\tab\t\n"
      "17\tab\ttrailing";
  std::string fast, slow;
  const auto fast_n = dc::filter_lines(data, key, fast);
  const auto slow_n = dc::filter_lines_decode_all(data, key, slow);
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast_n, slow_n);
  // Sanity: the good lines actually survive. "13\tab" has no second tab and
  // must be dropped by both.
  EXPECT_NE(fast.find("10\tab\tgood"), std::string::npos);
  EXPECT_NE(fast.find("16\tab\t"), std::string::npos);
  EXPECT_EQ(fast.find("13\tab\n"), std::string::npos);
}

TEST(FilterLines, FastPathMatchesFullDecodeOnRealBlocks) {
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 16);
  for (const std::string key : {"IssueEvent", "PushEvent", "NoSuchEvent"}) {
    for (const auto bid : ds.dfs->blocks_of(ds.path)) {
      const auto data = ds.dfs->read_block(bid);
      std::string fast, slow;
      const auto fn = dc::filter_lines(data, key, fast);
      const auto sn = dc::filter_lines_decode_all(data, key, slow);
      EXPECT_EQ(fast, slow);
      EXPECT_EQ(fn, sn);
    }
  }
}
