// SelectionRuntime policy-seam properties: a zero-fault runtime is
// deterministic (bit-identical across repeated runs) for every scheduler on
// both datasets, an empty-plan FaultPolicy never changes any report field,
// and reports are thread-count invariant. Plus unit coverage for the
// AttemptTracker state machine and the shared split/filter kernels.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/fault_injector.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/lpt.hpp"
#include "sim/selection_sim.hpp"

namespace dc = datanet::core;
namespace dfs = datanet::dfs;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;
namespace dsim = datanet::sim;

namespace {

dc::ExperimentConfig small_config() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 5;
  return cfg;
}

// All four production schedulers, fresh instances per call.
std::vector<std::unique_ptr<dsch::TaskScheduler>> all_schedulers() {
  std::vector<std::unique_ptr<dsch::TaskScheduler>> v;
  v.push_back(std::make_unique<dsch::LocalityScheduler>(7));
  v.push_back(std::make_unique<dsch::LptScheduler>());
  v.push_back(std::make_unique<dsch::DataNetScheduler>());
  v.push_back(std::make_unique<dsch::FlowScheduler>());
  return v;
}

void expect_identical(const dc::SelectionResult& a, const dc::SelectionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.assignment.block_to_node, b.assignment.block_to_node) << label;
  EXPECT_EQ(a.assignment.node_load, b.assignment.node_load) << label;
  EXPECT_EQ(a.assignment.node_input_bytes, b.assignment.node_input_bytes)
      << label;
  EXPECT_EQ(a.assignment.local_tasks, b.assignment.local_tasks) << label;
  EXPECT_EQ(a.assignment.remote_tasks, b.assignment.remote_tasks) << label;
  EXPECT_EQ(a.node_local_data, b.node_local_data) << label;
  EXPECT_EQ(a.node_filtered_bytes, b.node_filtered_bytes) << label;
  EXPECT_EQ(a.blocks_scanned, b.blocks_scanned) << label;
  EXPECT_EQ(a.lost_block_ids, b.lost_block_ids) << label;
  EXPECT_EQ(dm::report_to_json(a.report, /*include_output=*/true),
            dm::report_to_json(b.report, /*include_output=*/true))
      << label;
}

dc::SelectionResult runtime_clean(const dc::StoredDataset& ds,
                                  const std::string& key,
                                  dsch::TaskScheduler& sched,
                                  const dc::DataNet* net,
                                  const dc::ExperimentConfig& cfg) {
  dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing)
      .run(*ds.dfs, ds.path, key, sched, net, cfg);
}

}  // namespace

// ---- determinism: repeated runs are byte-identical per scheduler ----

TEST(SelectionRuntime, RepeatedRunsIdenticalOnMovieAllSchedulers) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];
  for (const auto& sched : all_schedulers()) {
    auto fresh = all_schedulers();  // the rerun gets its own instances
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i]->name() != sched->name()) continue;
      const auto first = runtime_clean(ds, key, *fresh[i], &net, cfg);
      const auto again = runtime_clean(ds, key, *sched, &net, cfg);
      expect_identical(again, first, std::string(sched->name()) + "/movie");
      // Clean runs dispatch exactly one attempt per task, nothing else.
      EXPECT_EQ(first.report.attempts.attempts, first.blocks_scanned);
      EXPECT_EQ(first.report.attempts.timeouts, 0u);
      EXPECT_EQ(first.report.attempts.redispatches, 0u);
      EXPECT_EQ(first.report.attempts.speculative_launched, 0u);
    }
  }
}

TEST(SelectionRuntime, RepeatedRunsIdenticalOnGithubBaselineAndNet) {
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 32);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.6});
  const std::string key = "IssueEvent";
  for (const dc::DataNet* net_ptr : {static_cast<const dc::DataNet*>(nullptr),
                                     &net}) {
    for (const auto& sched : all_schedulers()) {
      auto fresh = all_schedulers();
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        if (fresh[i]->name() != sched->name()) continue;
        const auto first = runtime_clean(ds, key, *fresh[i], net_ptr, cfg);
        const auto again = runtime_clean(ds, key, *sched, net_ptr, cfg);
        expect_identical(again, first,
                         std::string(sched->name()) +
                             (net_ptr ? "/github+net" : "/github-baseline"));
      }
    }
  }
}

// ---- property: an empty fault plan changes nothing ----

TEST(SelectionRuntime, EmptyFaultPlanIsInvisible) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];

  dsch::LocalityScheduler clean_sched(7);
  const auto clean = runtime_clean(ds, key, clean_sched, &net, cfg);

  // Full fault machinery — checksum-retry reads, injected faults, attempt
  // tracking — but the plan is empty: every field must come out unchanged.
  dfs::FaultInjector injector(*ds.dfs, {});
  dc::ChecksumRetryReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  dc::InjectedFaults faults(injector);
  dc::AnalyticBackend timing;
  dsch::LocalityScheduler sched(7);
  const auto faulted = dc::SelectionRuntime(read, faults, timing)
                           .run(*ds.dfs, ds.path, key, sched, &net, cfg);
  expect_identical(faulted, clean, "empty-plan");
  EXPECT_EQ(faulted.report.retries, 0u);
  EXPECT_EQ(faulted.report.lost_blocks, 0u);
  EXPECT_FALSE(faulted.report.degraded);
}

// ---- property: reports are bit-identical at any engine thread count ----

TEST(SelectionRuntime, ThreadCountInvariance) {
  auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];

  cfg.execution_threads = 1;
  dsch::DataNetScheduler s1;
  const auto one = runtime_clean(ds, key, s1, &net, cfg);
  cfg.execution_threads = 4;
  dsch::DataNetScheduler s4;
  const auto four = runtime_clean(ds, key, s4, &net, cfg);
  EXPECT_EQ(dm::report_to_json(one.report, true),
            dm::report_to_json(four.report, true));
}

// ---- config validation ----

TEST(SelectionRuntime, ValidateRejectsImpossibleConfigs) {
  const auto base = small_config();
  auto cfg = base;
  cfg.num_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.block_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.slots_per_node = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.replication = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base;
  cfg.replication = cfg.num_nodes + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(base.validate());
  // The dataset builders validate up front.
  auto bad = base;
  bad.replication = bad.num_nodes + 1;
  EXPECT_THROW(dc::make_movie_dataset(bad, 8, 50), std::invalid_argument);
}

// ---- event backend plugs into the same runtime ----

TEST(SelectionRuntime, EventBackendIsDeterministicAndFillsTiming) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto graph = net.scheduling_graph(ds.hot_keys[0]);

  dsim::SelectionSimOptions opt;
  opt.cluster.num_nodes = cfg.num_nodes;

  const auto run_once = [&] {
    dsim::EventSimBackend backend(*ds.dfs, opt);
    dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    dc::NoFaults faults;
    const dc::SelectionRuntime runtime(read, faults, backend);
    dsch::DataNetScheduler sched;
    auto result = runtime.run_graph(*ds.dfs, graph, ds.hot_keys[0], sched,
                                    cfg, /*materialize=*/false);
    return std::pair(std::move(result), backend.last_sim());
  };
  const auto [ra, sa] = run_once();
  const auto [rb, sb] = run_once();

  EXPECT_GT(sa.makespan, 0.0);
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.task_finish, sb.task_finish);
  EXPECT_EQ(sa.task_node, sb.task_node);
  EXPECT_EQ(ra.assignment.node_load, rb.assignment.node_load);
  EXPECT_EQ(ra.report.total_seconds, sa.makespan);
  EXPECT_EQ(ra.report.map_phase_seconds, sa.makespan);
  // Clean event runs never speculate.
  EXPECT_EQ(ra.report.attempts.speculative_launched, 0u);
}

// ---- AttemptTracker state machine ----

TEST(AttemptTracker, BackoffIsExponentialAndCapped) {
  dc::AttemptOptions opt;
  opt.backoff_base_ticks = 2;
  opt.backoff_cap_ticks = 12;
  dc::AttemptTracker tracker(1, opt);
  EXPECT_EQ(tracker.backoff_delay(1), 2u);
  EXPECT_EQ(tracker.backoff_delay(2), 4u);
  EXPECT_EQ(tracker.backoff_delay(3), 8u);
  EXPECT_EQ(tracker.backoff_delay(4), 12u);   // capped
  EXPECT_EQ(tracker.backoff_delay(400), 12u); // saturating shift, no overflow
}

TEST(AttemptTracker, TimeoutExpiryAndRedispatchLifecycle) {
  dc::AttemptOptions opt;
  opt.timeout_ticks = 4;
  dc::AttemptTracker tracker(2, opt);
  const auto a0 = tracker.dispatch(0, /*node=*/0);
  const auto a1 = tracker.dispatch(1, /*node=*/1);
  EXPECT_EQ(tracker.open_tasks(), 2u);

  // Attempt 0 parks (stalled node); attempt 1 completes normally.
  ASSERT_EQ(tracker.pop_ready(), a0);
  tracker.mark_running(a0);
  ASSERT_EQ(tracker.pop_ready(), a1);
  tracker.mark_running(a1);
  tracker.complete(a1);
  EXPECT_EQ(tracker.open_tasks(), 1u);
  EXPECT_FALSE(tracker.task_open(1));

  // Nothing ready; the clock jumps to a0's deadline and it expires.
  EXPECT_FALSE(tracker.pop_ready().has_value());
  const auto next = tracker.next_event_tick();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, opt.timeout_ticks);
  tracker.advance_to(*next);
  const auto expired = tracker.expire_due();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], a0);
  EXPECT_EQ(tracker.attempt(a0).state, dc::AttemptState::kTimedOut);
  EXPECT_FALSE(tracker.has_live_attempt(0));
  EXPECT_TRUE(tracker.task_open(0));

  // Re-dispatch with backoff, complete, all counters consistent.
  const auto a2 = tracker.dispatch(0, /*node=*/2, tracker.backoff_delay(1));
  EXPECT_FALSE(tracker.pop_ready().has_value());  // still backing off
  tracker.advance_to(*tracker.next_event_tick());
  ASSERT_EQ(tracker.pop_ready(), a2);
  tracker.mark_running(a2);
  tracker.complete(a2);
  EXPECT_EQ(tracker.open_tasks(), 0u);
  EXPECT_EQ(tracker.stats().timeouts, 1u);
  EXPECT_EQ(tracker.stats().redispatches, 1u);
  EXPECT_EQ(tracker.stats().dispatched, 3u);
}

TEST(AttemptTracker, SpeculativeWinSupersedesRival) {
  dc::AttemptTracker tracker(1, {});
  const auto primary = tracker.dispatch(0, /*node=*/0);
  ASSERT_EQ(tracker.pop_ready(), primary);
  tracker.mark_running(primary);
  const auto backup = tracker.dispatch(0, /*node=*/1, /*delay=*/0,
                                       /*speculative=*/true,
                                       /*counts_toward_cap=*/false);
  EXPECT_TRUE(tracker.speculated(0));
  EXPECT_EQ(tracker.live_attempts_of(0), 2u);
  ASSERT_EQ(tracker.pop_ready(), backup);
  tracker.mark_running(backup);
  tracker.complete(backup);
  EXPECT_EQ(tracker.attempt(backup).state, dc::AttemptState::kSucceeded);
  EXPECT_EQ(tracker.attempt(primary).state, dc::AttemptState::kSuperseded);
  EXPECT_EQ(tracker.stats().speculative_launched, 1u);
  EXPECT_EQ(tracker.stats().speculative_wins, 1u);
  EXPECT_EQ(tracker.open_tasks(), 0u);
}

TEST(AttemptTracker, AbandonDegradesAndReopenRestores) {
  dc::AttemptTracker tracker(1, {});
  const auto a = tracker.dispatch(0, 0);
  ASSERT_EQ(tracker.pop_ready(), a);
  tracker.mark_running(a);
  tracker.abandon(0);
  EXPECT_FALSE(tracker.task_open(0));
  EXPECT_EQ(tracker.stats().degraded_tasks, 1u);

  // A kill reaction can reopen a closed task for re-execution.
  tracker.reopen(0);
  EXPECT_TRUE(tracker.task_open(0));
  const auto b = tracker.dispatch(0, 1, /*delay=*/0, /*speculative=*/false,
                                  /*counts_toward_cap=*/false);
  ASSERT_EQ(tracker.pop_ready(), b);
  tracker.mark_running(b);
  tracker.complete(b);
  EXPECT_EQ(tracker.open_tasks(), 0u);
}

TEST(AttemptTracker, ValidateRejectsBadOptions) {
  dc::AttemptOptions opt;
  opt.timeout_ticks = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.max_attempts = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.backoff_cap_ticks = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

// ---- shared kernels ----

TEST(SplitAtRecordBoundaries, EdgeCases) {
  using datanet::mapred::split_at_record_boundaries;

  EXPECT_TRUE(split_at_record_boundaries("", 4).empty());

  const std::string one = "1\tk\tpayload\n";
  auto chunks = split_at_record_boundaries(one, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], one);

  // pieces == 0 behaves like 1.
  chunks = split_at_record_boundaries(one, 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], one);

  // Multi-record data reassembles exactly and never splits mid-record.
  std::string data;
  for (int i = 0; i < 9; ++i) {
    data += std::to_string(i) + "\tkey" + std::to_string(i) + "\tpayload\n";
  }
  for (const std::uint32_t pieces : {1u, 2u, 3u, 8u, 100u}) {
    const auto parts = split_at_record_boundaries(data, pieces);
    std::string joined;
    for (const auto p : parts) {
      EXPECT_FALSE(p.empty());
      EXPECT_EQ(p.back(), '\n');
      joined.append(p);
    }
    EXPECT_EQ(joined, data) << "pieces=" << pieces;
  }

  // No trailing newline: the tail chunk keeps the partial last line intact.
  const std::string untailed = "1\ta\tx\n2\tb\ty";
  const auto parts = split_at_record_boundaries(untailed, 2);
  std::string joined;
  for (const auto p : parts) joined.append(p);
  EXPECT_EQ(joined, untailed);
}

TEST(FilterLines, FastPathMatchesFullDecode) {
  const std::string key = "ab";
  // Adversarial lines: prefix-of-key, key-is-prefix, malformed timestamps,
  // missing fields, empty key, key in payload position.
  const std::string data =
      "10\tab\tgood\n"
      "11\tabc\tlonger-key\n"
      "12\ta\tshorter-key\n"
      "xx\tab\tbad-timestamp\n"
      "13\tab\n"
      "14\t\tempty-key\n"
      "noTabs\n"
      "15\tzz\tab\n"
      "16\tab\t\n"
      "17\tab\ttrailing";
  std::string fast, slow;
  const auto fast_n = dc::filter_lines(data, key, fast);
  const auto slow_n = dc::filter_lines_decode_all(data, key, slow);
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast_n, slow_n);
  // Sanity: the good lines actually survive. "13\tab" has no second tab and
  // must be dropped by both.
  EXPECT_NE(fast.find("10\tab\tgood"), std::string::npos);
  EXPECT_NE(fast.find("16\tab\t"), std::string::npos);
  EXPECT_EQ(fast.find("13\tab\n"), std::string::npos);
}

TEST(FilterLines, FastPathMatchesFullDecodeOnRealBlocks) {
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 16);
  for (const std::string key : {"IssueEvent", "PushEvent", "NoSuchEvent"}) {
    for (const auto bid : ds.dfs->blocks_of(ds.path)) {
      const auto data = ds.dfs->read_block(bid);
      std::string fast, slow;
      const auto fn = dc::filter_lines(data, key, fast);
      const auto sn = dc::filter_lines_decode_all(data, key, slow);
      EXPECT_EQ(fast, slow);
      EXPECT_EQ(fn, sn);
    }
  }
}
