// Tests for the bipartite scheduling graph and the max-flow machinery behind
// the paper's Ford–Fulkerson optimal-assignment remark.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/assignment.hpp"
#include "graph/bipartite.hpp"
#include "graph/maxflow.hpp"

namespace dg = datanet::graph;

// ---- bipartite graph ----

TEST(Bipartite, BasicAccessors) {
  std::vector<dg::BlockVertex> blocks{
      {.block_id = 10, .weight = 100, .hosts = {0, 1}},
      {.block_id = 11, .weight = 50, .hosts = {1, 2}},
  };
  const dg::BipartiteGraph g(3, blocks);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_blocks(), 2u);
  EXPECT_EQ(g.total_weight(), 150u);
  EXPECT_EQ(g.block(0).block_id, 10u);
  EXPECT_EQ(g.blocks_on(1).size(), 2u);
  EXPECT_EQ(g.blocks_on(0).size(), 1u);
}

TEST(Bipartite, RejectsBadInputs) {
  EXPECT_THROW(dg::BipartiteGraph(0, {}), std::invalid_argument);
  std::vector<dg::BlockVertex> bad{{.block_id = 1, .weight = 1, .hosts = {5}}};
  EXPECT_THROW(dg::BipartiteGraph(3, bad), std::invalid_argument);
  const dg::BipartiteGraph g(2, {});
  EXPECT_THROW((void)g.block(0), std::out_of_range);
  EXPECT_THROW((void)g.blocks_on(2), std::out_of_range);
}

TEST(Bipartite, EmptyGraphIsValid) {
  const dg::BipartiteGraph g(4, {});
  EXPECT_EQ(g.num_blocks(), 0u);
  EXPECT_EQ(g.total_weight(), 0u);
}

// ---- max flow ----

TEST(MaxFlow, TrivialTwoVertex) {
  dg::MaxFlow mf(2);
  const auto e = mf.add_edge(0, 1, 7);
  EXPECT_EQ(mf.solve(0, 1), 7u);
  EXPECT_EQ(mf.flow_on(e), 7u);
}

TEST(MaxFlow, SeriesBottleneck) {
  dg::MaxFlow mf(3);
  mf.add_edge(0, 1, 10);
  const auto e = mf.add_edge(1, 2, 4);
  EXPECT_EQ(mf.solve(0, 2), 4u);
  EXPECT_EQ(mf.flow_on(e), 4u);
}

TEST(MaxFlow, ParallelPathsSum) {
  dg::MaxFlow mf(4);
  mf.add_edge(0, 1, 3);
  mf.add_edge(1, 3, 3);
  mf.add_edge(0, 2, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.solve(0, 3), 8u);
}

TEST(MaxFlow, ClassicDiamond) {
  // CLRS-style example with a cross edge.
  dg::MaxFlow mf(4);
  mf.add_edge(0, 1, 10);
  mf.add_edge(0, 2, 10);
  mf.add_edge(1, 2, 1);
  mf.add_edge(1, 3, 8);
  mf.add_edge(2, 3, 10);
  EXPECT_EQ(mf.solve(0, 3), 18u);
}

TEST(MaxFlow, DisconnectedIsZero) {
  dg::MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.solve(0, 3), 0u);
}

TEST(MaxFlow, RejectsBadArgs) {
  EXPECT_THROW(dg::MaxFlow(1), std::invalid_argument);
  dg::MaxFlow mf(3);
  EXPECT_THROW(mf.add_edge(0, 9, 1), std::out_of_range);
  EXPECT_THROW(mf.solve(1, 1), std::invalid_argument);
  EXPECT_THROW((void)mf.flow_on(99), std::out_of_range);
}

TEST(MaxFlow, BipartiteMatchingViaUnitCapacities) {
  // 3 blocks, 3 nodes, perfect matching exists.
  // vertices: 0=s, 1..3 blocks, 4..6 nodes, 7=t
  dg::MaxFlow mf(8);
  for (std::uint32_t b = 1; b <= 3; ++b) mf.add_edge(0, b, 1);
  mf.add_edge(1, 4, 1);
  mf.add_edge(1, 5, 1);
  mf.add_edge(2, 5, 1);
  mf.add_edge(3, 6, 1);
  for (std::uint32_t n = 4; n <= 6; ++n) mf.add_edge(n, 7, 1);
  EXPECT_EQ(mf.solve(0, 7), 3u);
}

// ---- balanced assignment ----

namespace {
dg::BipartiteGraph uniform_graph(std::uint32_t nodes, std::size_t blocks,
                                 std::uint64_t weight, std::uint32_t replication,
                                 std::uint64_t seed) {
  datanet::common::Rng rng(seed);
  std::vector<dg::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    dg::BlockVertex v;
    v.block_id = j;
    v.weight = weight;
    while (v.hosts.size() < replication) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  return dg::BipartiteGraph(nodes, std::move(bs));
}
}  // namespace

TEST(Assignment, RespectsReplicaLocality) {
  const auto g = uniform_graph(8, 64, 10, 3, 5);
  const auto res = dg::balanced_assignment(g);
  ASSERT_EQ(res.assignment.size(), 64u);
  for (std::size_t j = 0; j < 64; ++j) {
    const auto& hosts = g.block(j).hosts;
    EXPECT_NE(std::find(hosts.begin(), hosts.end(), res.assignment[j]),
              hosts.end());
  }
}

TEST(Assignment, LoadsAccountedExactly) {
  const auto g = uniform_graph(6, 48, 7, 2, 9);
  const auto res = dg::balanced_assignment(g);
  std::vector<std::uint64_t> manual(6, 0);
  for (std::size_t j = 0; j < 48; ++j) manual[res.assignment[j]] += 7;
  EXPECT_EQ(manual, res.node_load);
  EXPECT_EQ(std::accumulate(manual.begin(), manual.end(), 0ull),
            g.total_weight());
}

TEST(Assignment, UniformBlocksNearPerfectBalance) {
  const auto g = uniform_graph(8, 128, 10, 3, 17);
  const auto res = dg::balanced_assignment(g);
  const auto [mn, mx] =
      std::minmax_element(res.node_load.begin(), res.node_load.end());
  // 128 unit blocks over 8 nodes = 16 each; rounding slack <= 1 block.
  EXPECT_LE(*mx - *mn, 20u);
  EXPECT_LE(res.fractional_capacity, 170u);
}

TEST(Assignment, SkewedWeightsStillBounded) {
  // One giant block plus many small ones: capacity >= giant weight.
  datanet::common::Rng rng(23);
  std::vector<dg::BlockVertex> bs;
  bs.push_back({.block_id = 0, .weight = 1000, .hosts = {0, 1, 2}});
  for (std::size_t j = 1; j < 40; ++j) {
    bs.push_back({.block_id = j,
                  .weight = 10,
                  .hosts = {static_cast<datanet::dfs::NodeId>(rng.bounded(8)),
                            static_cast<datanet::dfs::NodeId>(4 + rng.bounded(4))}});
  }
  const dg::BipartiteGraph g(8, bs);
  const auto res = dg::balanced_assignment(g);
  const auto mx = *std::max_element(res.node_load.begin(), res.node_load.end());
  // Makespan is at least the giant block and at most giant + slack.
  EXPECT_GE(mx, 1000u);
  EXPECT_LE(mx, 1100u);
}

TEST(Assignment, SingleNodeTakesEverything) {
  std::vector<dg::BlockVertex> bs{
      {.block_id = 0, .weight = 5, .hosts = {0}},
      {.block_id = 1, .weight = 6, .hosts = {0}},
  };
  const dg::BipartiteGraph g(1, bs);
  const auto res = dg::balanced_assignment(g);
  EXPECT_EQ(res.node_load[0], 11u);
}

TEST(Assignment, ZeroWeightBlocksAssignedSomewhere) {
  std::vector<dg::BlockVertex> bs{
      {.block_id = 0, .weight = 0, .hosts = {0, 1}},
      {.block_id = 1, .weight = 0, .hosts = {1}},
  };
  const dg::BipartiteGraph g(2, bs);
  const auto res = dg::balanced_assignment(g);
  ASSERT_EQ(res.assignment.size(), 2u);
  EXPECT_EQ(res.assignment[1], 1u);
}

TEST(Assignment, ThrowsOnHostlessBlock) {
  std::vector<dg::BlockVertex> bs{{.block_id = 0, .weight = 5, .hosts = {}}};
  const dg::BipartiteGraph g(2, bs);
  EXPECT_THROW(dg::balanced_assignment(g), std::invalid_argument);
}

// Property sweep: flow assignment never worse than 2x the perfect split for
// unit-ish weights across sizes.
class AssignmentSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {};

TEST_P(AssignmentSweep, BalanceWithinTwoXOfIdeal) {
  const auto [nodes, blocks] = GetParam();
  const auto g = uniform_graph(nodes, blocks, 10, std::min(3u, nodes), 31);
  const auto res = dg::balanced_assignment(g);
  const auto mx = *std::max_element(res.node_load.begin(), res.node_load.end());
  const double ideal =
      static_cast<double>(g.total_weight()) / static_cast<double>(nodes);
  EXPECT_LE(static_cast<double>(mx), 2.0 * ideal + 10.0)
      << nodes << " nodes, " << blocks << " blocks";
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AssignmentSweep,
    ::testing::Combine(::testing::Values<std::uint32_t>(2, 8, 32),
                       ::testing::Values<std::size_t>(16, 64, 256)));
