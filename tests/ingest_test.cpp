// Tests for the streaming-ingestion path (PR 10): the open-block journal ops
// (kOpenBlock / kAppendExtent / kSealBlock) and their torn-tail behavior,
// dfs::Ingestor group commit and FileWriter-identical block boundaries, the
// open-block quarantine on the query surface, FsImage v2 checkpoints taken
// mid-ingestion, crash recovery with open-block adoption (a continued run is
// content- and boundary-identical to one that never crashed), the fsck
// open-block audit, and elasticmap::LiveMapMaintainer's delta maintenance
// with its staleness/chi-drift ledger. The crash sweeps mirror
// recovery_test.cpp: every group-commit boundary and every byte offset of an
// ingestion journal must recover to a valid committed prefix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dfs/edit_log.hpp"
#include "dfs/fs_image.hpp"
#include "dfs/fsck.hpp"
#include "dfs/ingest.hpp"
#include "dfs/mini_dfs.hpp"
#include "elasticmap/elastic_map.hpp"
#include "elasticmap/live_map.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"
#include "workload/record.hpp"

namespace dd = datanet::dfs;
namespace de = datanet::elasticmap;
namespace dw = datanet::workload;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("datanet_ingest_test_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir / name).string();
  }
};

std::vector<std::string> movie_lines(std::uint64_t n, std::uint64_t seed) {
  dw::MovieGenOptions o;
  o.num_records = n;
  o.num_movies = 6;
  o.seed = seed;
  std::vector<std::string> lines;
  for (const auto& r : dw::MovieLogGenerator(o).generate()) {
    lines.push_back(dw::encode_record(r));
  }
  return lines;
}

void copy_truncated(const std::string& src, const std::string& dst,
                    std::uint64_t keep_bytes) {
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(std::min<std::uint64_t>(keep_bytes, bytes.size()));
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Full logical content of a file: sealed blocks in list order, then any open
// block (at most one per path under the single-mutator contract).
std::string file_content(const dd::MiniDfs& dfs, const std::string& path) {
  std::string out;
  for (const dd::BlockId b : dfs.blocks_of(path)) {
    out += dfs.read_block(b);
  }
  for (const auto& open : dfs.open_blocks()) {
    if (open.file == path) out += dfs.read_block(open.id);
  }
  return out;
}

dd::DfsOptions small_opts() {
  dd::DfsOptions opt;
  opt.block_size = 1024;
  opt.replication = 3;
  opt.seed = 99;
  return opt;
}

// A journaled cluster streaming records through an Ingestor, recording
// (journal offset, namespace digest) after every journal movement — i.e. at
// every group-commit / seal boundary. Index 0 is the blank namespace.
struct IngestCluster {
  TempDir tmp;
  std::unique_ptr<dd::EditLog> journal;
  std::unique_ptr<dd::MiniDfs> dfs;
  std::string image_path;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> history;

  IngestCluster() {
    dfs = std::make_unique<dd::MiniDfs>(dd::ClusterTopology::flat(6),
                                        small_opts());
    journal = std::make_unique<dd::EditLog>(tmp.file("ingest.edits"));
    dfs->attach_edit_log(journal.get());
    image_path = tmp.file("ingest.fsimage");
    dd::FsImage::save(*dfs, image_path);
    record();
  }

  void record() {
    history.emplace_back(journal->bytes_written(), dfs->namespace_digest());
  }

  // Stream `lines` through an Ingestor, recording every commit boundary.
  void run_stream(const std::vector<std::string>& lines,
                  std::uint64_t group) {
    dd::Ingestor ing(*dfs, "/logs/stream", {.group_records = group});
    record();  // create() is itself journaled
    for (const auto& line : lines) {
      ing.append(line);
      if (journal->bytes_written() != history.back().first) record();
    }
    ing.close();
    record();
  }
};

}  // namespace

// --------------------------------------------------- journal ops (framing) --

TEST(EditLogIngest, EncodeDecodeRoundTripsStreamingOps) {
  std::vector<dd::EditRecord> records;
  records.push_back({.op = dd::EditOp::kOpenBlock,
                     .file = "/logs/stream",
                     .block = 11,
                     .replicas = {4, 0, 2}});
  records.push_back({.op = dd::EditOp::kAppendExtent,
                     .block = 11,
                     .num_records = 64,
                     .data = std::string("r1\nr2\n"),
                     .extent_seq = 3});
  records.push_back({.op = dd::EditOp::kSealBlock,
                     .block = 11,
                     .num_records = 200,
                     .checksum = 0xfeedface});
  for (const auto& r : records) {
    const auto back = dd::EditLog::decode(dd::EditLog::encode(r));
    EXPECT_EQ(back.op, r.op);
    EXPECT_EQ(back.file, r.file);
    EXPECT_EQ(back.block, r.block);
    EXPECT_EQ(back.num_records, r.num_records);
    EXPECT_EQ(back.checksum, r.checksum);
    EXPECT_EQ(back.replicas, r.replicas);
    EXPECT_EQ(back.data, r.data);
    EXPECT_EQ(back.extent_seq, r.extent_seq);
  }
  // Trailing bytes after a valid streaming payload are corruption.
  auto payload =
      dd::EditLog::encode({.op = dd::EditOp::kSealBlock, .block = 1});
  payload += "x";
  EXPECT_THROW((void)dd::EditLog::decode(payload), std::runtime_error);
}

// ------------------------------------------------------- open-block model --

TEST(OpenBlocks, QuarantinedFromQuerySurfaceUntilSeal) {
  dd::MiniDfs mini(dd::ClusterTopology::flat(6), small_opts());
  mini.create("/logs/a").close();
  const dd::BlockId b = mini.open_block("/logs/a");
  mini.append_extent(b, "one\n", 1);
  mini.append_extent(b, "two\nthree\n", 2);

  // Not published: the file's block list is still empty...
  EXPECT_TRUE(mini.blocks_of("/logs/a").empty());
  // ...but fsck and recovery can see it.
  const auto open = mini.open_blocks();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].id, b);
  EXPECT_EQ(open[0].file, "/logs/a");
  EXPECT_EQ(open[0].extents_applied, 2u);
  EXPECT_EQ(open[0].size_bytes, 14u);
  EXPECT_EQ(open[0].num_records, 3u);
  const auto report = dd::fsck(mini);
  EXPECT_EQ(report.open_blocks, 1u);
  EXPECT_EQ(report.open_bytes, 14u);

  // Mutator-side reads work; the concurrent-query surface refuses.
  EXPECT_EQ(mini.read_block(b), "one\ntwo\nthree\n");
  EXPECT_THROW((void)mini.read_block_pinned(b), std::invalid_argument);
  EXPECT_THROW(mini.corrupt_block(b), std::invalid_argument);

  mini.seal_block(b);
  ASSERT_EQ(mini.blocks_of("/logs/a").size(), 1u);
  EXPECT_EQ(mini.blocks_of("/logs/a")[0], b);
  EXPECT_TRUE(mini.open_blocks().empty());
  EXPECT_EQ(mini.read_block_pinned(b).data, "one\ntwo\nthree\n");
}

TEST(Ingestor, MatchesFileWriterDigestAndBoundaries) {
  dw::MovieGenOptions o;
  o.num_records = 300;
  o.num_movies = 6;
  o.seed = 5;
  const auto records = dw::MovieLogGenerator(o).generate();

  dd::MiniDfs via_writer(dd::ClusterTopology::flat(6), small_opts());
  dw::ingest(via_writer, "/logs/stream", records);

  dd::MiniDfs via_ingestor(dd::ClusterTopology::flat(6), small_opts());
  {
    dd::Ingestor ing(via_ingestor, "/logs/stream", {.group_records = 7});
    for (const auto& r : records) ing.append(dw::encode_record(r));
  }

  // Same records, same seed, same boundary rule, same one-draw-per-block
  // placement order: the namespaces are bit-identical.
  EXPECT_EQ(via_ingestor.namespace_digest(), via_writer.namespace_digest());
  EXPECT_EQ(via_ingestor.blocks_of("/logs/stream").size(),
            via_writer.blocks_of("/logs/stream").size());
  EXPECT_EQ(file_content(via_ingestor, "/logs/stream"),
            file_content(via_writer, "/logs/stream"));
}

// ------------------------------------------------------------ crash sweeps --

TEST(IngestRecovery, EveryGroupCommitBoundaryRecoversExactly) {
  IngestCluster c;
  c.run_stream(movie_lines(160, 3), /*group=*/16);
  ASSERT_GT(c.history.size(), 4u);
  for (const auto& [offset, digest] : c.history) {
    const auto cut = c.tmp.file("edits.cut");
    copy_truncated(c.journal->path(), cut, offset);
    dd::RecoveryInfo info;
    const auto recovered = dd::MiniDfs::recover(c.image_path, cut, &info);
    EXPECT_EQ(recovered.namespace_digest(), digest)
        << "kill at journal offset " << offset;
    EXPECT_FALSE(info.torn);
  }
}

TEST(IngestRecovery, TornTailAtEveryByteOffsetYieldsACommittedPrefix) {
  IngestCluster c;
  c.run_stream(movie_lines(48, 4), /*group=*/8);
  const auto full = dd::EditLog::replay(c.journal->path());
  ASSERT_FALSE(full.torn);
  const auto total = static_cast<std::uint64_t>(
      fs::file_size(c.journal->path()));
  ASSERT_EQ(total, full.valid_bytes);

  const auto cut = c.tmp.file("edits.cut");
  std::vector<std::uint64_t> frame_digests(full.frame_ends.size());
  for (std::size_t i = 0; i < full.frame_ends.size(); ++i) {
    copy_truncated(c.journal->path(), cut, full.frame_ends[i]);
    frame_digests[i] =
        dd::MiniDfs::recover(c.image_path, cut).namespace_digest();
  }
  const auto blank_digest = dd::FsImage::load(c.image_path).namespace_digest();

  for (std::uint64_t keep = 0; keep <= total; ++keep) {
    copy_truncated(c.journal->path(), cut, keep);
    const auto r = dd::EditLog::replay(cut);
    EXPECT_LE(r.valid_bytes, keep);
    EXPECT_EQ(r.torn, r.valid_bytes != keep) << "keep=" << keep;
    const auto digest =
        dd::MiniDfs::recover(c.image_path, cut).namespace_digest();
    const auto it = std::find(full.frame_ends.begin(), full.frame_ends.end(),
                              r.valid_bytes);
    const auto expected =
        it == full.frame_ends.end()
            ? blank_digest
            : frame_digests[static_cast<std::size_t>(
                  it - full.frame_ends.begin())];
    EXPECT_EQ(digest, expected) << "keep=" << keep;
  }
}

TEST(IngestRecovery, MidIngestionCheckpointCoversOpenBlock) {
  IngestCluster c;
  const auto lines = movie_lines(120, 8);
  dd::Ingestor ing(*c.dfs, "/logs/stream", {.group_records = 8});
  for (std::size_t i = 0; i < 60; ++i) ing.append(lines[i]);
  ing.flush();  // durable, block still open
  ASSERT_EQ(c.dfs->open_blocks().size(), 1u);

  // FsImage v2: the open block (bytes + extent count) rides the checkpoint.
  const auto mid_image = c.tmp.file("mid.fsimage");
  dd::FsImage::save(*c.dfs, mid_image);
  EXPECT_EQ(dd::FsImage::journal_covered(mid_image),
            c.journal->bytes_written());
  EXPECT_EQ(dd::FsImage::load(mid_image).namespace_digest(),
            c.dfs->namespace_digest());

  for (std::size_t i = 60; i < lines.size(); ++i) ing.append(lines[i]);
  ing.close();
  const auto live = c.dfs->namespace_digest();

  // Checkpoint + suffix == blank image + full journal == live, and replaying
  // the FULL journal over the mid checkpoint (idempotent skip of the covered
  // prefix, open-block ops included) converges too.
  dd::RecoveryInfo from_mid;
  const auto a = dd::MiniDfs::recover(mid_image, c.journal->path(), &from_mid);
  dd::RecoveryInfo from_blank;
  const auto b =
      dd::MiniDfs::recover(c.image_path, c.journal->path(), &from_blank);
  EXPECT_EQ(a.namespace_digest(), live);
  EXPECT_EQ(b.namespace_digest(), live);
  EXPECT_GT(from_mid.skipped_frames, 0u);
  EXPECT_LT(from_mid.replayed_frames, from_blank.replayed_frames);
}

TEST(IngestRecovery, CrashedRunContinuedMatchesNeverCrashedReference) {
  const auto lines = movie_lines(200, 6);
  const std::uint64_t group = 8;
  const std::string path = "/logs/stream";

  // Reference: the same stream, never crashed, no journal.
  dd::MiniDfs ref(dd::ClusterTopology::flat(6), small_opts());
  {
    dd::Ingestor ing(ref, path, {.group_records = group});
    for (const auto& line : lines) ing.append(line);
  }
  const std::string want = file_content(ref, path);

  // Live run killed mid-stream at a non-boundary point (5 records buffered).
  IngestCluster c;
  const std::size_t kill_at = 117;
  auto ing = std::make_unique<dd::Ingestor>(*c.dfs, path,
                                            dd::IngestOptions{group});
  for (std::size_t i = 0; i < kill_at; ++i) ing->append(lines[i]);
  const auto crash_journal = c.tmp.file("ingest.edits.crash");
  fs::copy_file(c.journal->path(), crash_journal,
                fs::copy_options::overwrite_existing);
  auto recovered = dd::MiniDfs::recover(c.image_path, crash_journal);
  EXPECT_EQ(recovered.namespace_digest(), c.dfs->namespace_digest());
  ing.reset();  // the dead writer's buffer never reached the crash journal

  // The recovered prefix is exactly the committed groups: a whole number of
  // group commits, never more than one group behind the kill point.
  const std::string got = file_content(recovered, path);
  ASSERT_TRUE(want.compare(0, got.size(), got) == 0)
      << "recovered content is not a prefix of the stream";
  const auto committed = static_cast<std::size_t>(
      std::count(got.begin(), got.end(), '\n'));
  // Not necessarily a multiple of `group`: block-boundary seals flush the
  // partial group they interrupt. The loss bound is what matters — the tail
  // that died in the buffer is strictly smaller than one group.
  EXPECT_LE(committed, kill_at);
  EXPECT_LT(kill_at - committed, group) << "a group-committed batch was lost";

  // Continue on the recovered instance: fresh journal + checkpoint (the
  // recover_shard protocol), and the new Ingestor ADOPTS the open block the
  // crash left behind so boundaries stay identical to the reference.
  dd::EditLog journal2(c.tmp.file("ingest.edits2"));
  recovered.attach_edit_log(&journal2);
  dd::FsImage::save(recovered, c.tmp.file("ingest.fsimage2"));
  {
    dd::Ingestor cont(recovered, path, {.group_records = group});
    for (std::size_t i = committed; i < lines.size(); ++i) {
      cont.append(lines[i]);
    }
  }
  EXPECT_EQ(file_content(recovered, path), want);
  EXPECT_EQ(recovered.blocks_of(path).size(), ref.blocks_of(path).size());
  EXPECT_TRUE(recovered.open_blocks().empty());

  // And the maps built over both agree exactly.
  const auto ref_map = de::ElasticMapArray::build(ref, path, {});
  const auto got_map = de::ElasticMapArray::build(recovered, path, {});
  const dw::GroundTruth truth(ref, path);
  for (const auto id : truth.ids_by_size()) {
    EXPECT_EQ(got_map.estimate_total_size(id),
              ref_map.estimate_total_size(id));
  }
}

TEST(IngestRecovery, OpenBlockAuditCatchesLostGroupCommit) {
  IngestCluster c;
  const auto lines = movie_lines(40, 9);
  dd::Ingestor ing(*c.dfs, "/logs/stream", {.group_records = 8});
  for (const auto& line : lines) ing.append(line);
  ing.flush();
  ASSERT_EQ(c.dfs->open_blocks().size(), 1u);

  // Durable state from the full journal agrees with the live NameNode.
  const auto clean = dd::MiniDfs::recover(c.image_path, c.journal->path());
  const auto ok = dd::audit_open_blocks(*c.dfs, clean);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.open_blocks, 1u);
  EXPECT_GT(ok.open_bytes, 0u);

  // Drop the final extent frame from the journal: the recovered open block
  // is now SHORTER than the live one — the audit must flag it.
  const auto full = dd::EditLog::replay(c.journal->path());
  ASSERT_GE(full.frame_ends.size(), 2u);
  const auto cut = c.tmp.file("edits.cut");
  copy_truncated(c.journal->path(), cut,
                 full.frame_ends[full.frame_ends.size() - 2]);
  const auto behind = dd::MiniDfs::recover(c.image_path, cut);
  const auto bad = dd::audit_open_blocks(*c.dfs, behind);
  EXPECT_FALSE(bad.ok());
  EXPECT_GE(bad.mismatched, 1u);
  ASSERT_FALSE(bad.violations.empty());
}

// ------------------------------------------------------- live maintenance --

TEST(LiveMapMaintainer, DeltaApplyMatchesFullRebuildEstimates) {
  dd::MiniDfs mini(dd::ClusterTopology::flat(6), small_opts());
  const auto lines = movie_lines(240, 11);
  const std::string path = "/logs/stream";
  mini.create(path).close();

  de::LiveMapOptions opt;
  opt.max_blocks_per_tick = 2;
  de::LiveMapMaintainer maint(mini, path, opt);
  EXPECT_EQ(maint.ledger().covered_blocks, 0u);

  dd::Ingestor ing(mini, path, {.group_records = 16});
  for (const auto& line : lines) ing.append(line);
  ing.close();
  const auto sealed = mini.blocks_of(path).size();
  ASSERT_GT(sealed, 4u);

  // Everything sealed since construction is stale; the drift bound is the
  // stale byte fraction — here 1.0, since nothing is covered yet.
  EXPECT_EQ(maint.scan(), sealed);
  EXPECT_EQ(maint.ledger().stale_blocks, sealed);
  EXPECT_DOUBLE_EQ(maint.ledger().estimated_chi_drift, 1.0);
  EXPECT_TRUE(maint.ledger().rebuild_recommended);

  // Ticks incorporate at most max_blocks_per_tick deltas each.
  const auto applied = maint.tick();
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(maint.ledger().stale_blocks, sealed - 2);
  EXPECT_GT(maint.ledger().estimated_chi_drift, 0.0);
  EXPECT_LT(maint.ledger().estimated_chi_drift, 1.0);

  // Drain catches the map fully up; the drift bound collapses to zero.
  maint.drain();
  EXPECT_EQ(maint.ledger().stale_blocks, 0u);
  EXPECT_EQ(maint.ledger().covered_blocks, sealed);
  EXPECT_DOUBLE_EQ(maint.ledger().estimated_chi_drift, 0.0);
  EXPECT_FALSE(maint.ledger().rebuild_recommended);
  EXPECT_EQ(maint.ledger().deltas_applied, sealed);
  EXPECT_EQ(maint.ledger().full_rebuilds, 0u);

  // The delta-maintained map answers exactly like a from-scratch build.
  const auto fresh = de::ElasticMapArray::build(mini, path, {});
  const dw::GroundTruth truth(mini, path);
  for (const auto id : truth.ids_by_size()) {
    EXPECT_EQ(maint.map().estimate_total_size(id),
              fresh.estimate_total_size(id));
  }
}

TEST(LiveMapMaintainer, WatermarkAndFullRebuildResetTheLedger) {
  dd::MiniDfs mini(dd::ClusterTopology::flat(6), small_opts());
  const std::string path = "/logs/stream";
  const auto lines = movie_lines(120, 13);

  // Cover a small prefix, then grow past the watermark without draining.
  dd::Ingestor ing(mini, path, {.group_records = 16});
  for (std::size_t i = 0; i < 20; ++i) ing.append(lines[i]);
  ing.seal();
  de::LiveMapOptions opt;
  opt.rebuild_watermark = 0.25;
  de::LiveMapMaintainer maint(mini, path, opt);
  const auto covered = maint.ledger().covered_blocks;
  ASSERT_GT(covered, 0u);
  EXPECT_FALSE(maint.ledger().rebuild_recommended);

  for (std::size_t i = 20; i < lines.size(); ++i) ing.append(lines[i]);
  ing.close();
  maint.scan();
  EXPECT_GT(maint.ledger().stale_bytes, 0u);
  EXPECT_GT(maint.ledger().estimated_chi_drift, opt.rebuild_watermark);
  EXPECT_TRUE(maint.ledger().rebuild_recommended);

  // A full rebuild resets staleness and is counted separately from deltas.
  const auto rebuilt = maint.full_rebuild();
  EXPECT_EQ(rebuilt, mini.blocks_of(path).size());
  EXPECT_EQ(maint.ledger().covered_blocks, rebuilt);
  EXPECT_EQ(maint.ledger().stale_blocks, 0u);
  EXPECT_DOUBLE_EQ(maint.ledger().estimated_chi_drift, 0.0);
  EXPECT_FALSE(maint.ledger().rebuild_recommended);
  EXPECT_EQ(maint.ledger().full_rebuilds, 1u);
  EXPECT_EQ(maint.ledger().deltas_applied, 0u);
}
