// Micro-benchmark for the post-map pipeline: shuffle (partition gather) +
// group + reduce wall time vs. execution thread count. The engine computes
// all partition hashes inside the map tasks and runs the per-partition
// group+reduce stage on the thread pool, so this stage should scale with
// threads while producing bit-identical reports at every thread count.
//
// Timing uses JobReport::wall_shuffle_reduce_seconds (manual time), so the
// map stage is excluded from the measurement.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mapred/engine.hpp"

namespace {

using namespace datanet;

class KeyCountMapper final : public mapred::Mapper {
 public:
  void map(const workload::RecordView& r, mapred::Emitter& out) override {
    out.emit(std::string(r.key), "1");
  }
};

class SumReducer final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0;
    for (const auto& v : values) sum += static_cast<std::uint64_t>(v.size());
    out.emit(key, std::to_string(sum));
  }
};

// A shuffle-heavy workload: many splits, many distinct long-prefix keys
// (grouping must compare keys, the hash sort key shortcut matters), no
// combiner so every map output pair crosses the shuffle.
struct Workload {
  std::vector<std::string> blocks;
  std::vector<mapred::InputSplit> splits;
};

const Workload& workload_16x() {
  static const Workload w = [] {
    Workload out;
    common::Rng rng(7);
    const int num_splits = 16;
    const int records_per_split = 40000;
    const int num_keys = 20000;
    out.blocks.reserve(num_splits);
    for (int s = 0; s < num_splits; ++s) {
      std::string data;
      data.reserve(records_per_split * 48);
      for (int i = 0; i < records_per_split; ++i) {
        char key[40];
        std::snprintf(key, sizeof key, "subdataset_key_%05llu",
                      static_cast<unsigned long long>(rng.bounded(num_keys)));
        data += std::to_string(i) + "\t" + key + "\tpayload text\n";
      }
      out.blocks.push_back(std::move(data));
    }
    for (int s = 0; s < num_splits; ++s) {
      out.splits.push_back({.node = static_cast<std::uint32_t>(s % 4),
                            .data = out.blocks[s],
                            .charged_bytes = 0});
    }
    return out;
  }();
  return w;
}

mapred::Job reduce_job(std::uint32_t num_reducers) {
  mapred::Job job;
  job.config.name = "MicroReduce";
  job.config.num_reducers = num_reducers;
  job.mapper_factory = [] { return std::make_unique<KeyCountMapper>(); };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return job;
}

// arg0 = execution threads, arg1 = reducers. Manual time = shuffle+reduce
// wall seconds only (map stage excluded).
void BM_ShuffleReduce(benchmark::State& state) {
  const auto& w = workload_16x();
  const auto job = reduce_job(static_cast<std::uint32_t>(state.range(1)));
  mapred::Engine engine(
      {.num_nodes = 4,
       .slots_per_node = 2,
       .execution_threads = static_cast<std::uint32_t>(state.range(0))});
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto report = engine.run(job, w.splits);
    pairs = report.map_output_pairs;
    benchmark::DoNotOptimize(report.output);
    state.SetIterationTime(report.wall_shuffle_reduce_seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_ShuffleReduce)
    ->UseManualTime()
    ->ArgsProduct({{1, 2, 8}, {16}})
    ->Unit(benchmark::kMillisecond);

// Full-run wall time at the same thread counts (map included) — the
// end-to-end view of the same scaling.
void BM_EngineRun(benchmark::State& state) {
  const auto& w = workload_16x();
  const auto job = reduce_job(16);
  mapred::Engine engine(
      {.num_nodes = 4,
       .slots_per_node = 2,
       .execution_threads = static_cast<std::uint32_t>(state.range(0))});
  for (auto _ : state) {
    const auto report = engine.run(job, w.splits);
    benchmark::DoNotOptimize(report.output);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(16 * 40000));
}
BENCHMARK(BM_EngineRun)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
