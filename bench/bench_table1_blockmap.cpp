// Table I reproduction: the per-block hash-map view of sub-dataset sizes —
// "the number of reviews corresponding to different movies within a block
// file" — as recorded by the ElasticMap's exact (hash map) part.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "datanet/datanet.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Table I: size information of movies within one block file",
      "a handful of then-hot movies dominate each block; counts fall off "
      "steeply (3578, 3038, ..., 1)");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/64,
                                           /*num_movies=*/2000);
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  // Pick the densest block for the hottest movie, as the paper's example
  // does implicitly (a block around the release).
  const auto shares = net.distribution(ds.hot_keys[0]);
  std::uint64_t block = 0, best = 0;
  for (const auto& s : shares) {
    if (s.exact && s.estimated_bytes > best) {
      best = s.estimated_bytes;
      block = s.block_index;
    }
  }

  const auto& meta = net.meta().block_meta(block);
  std::vector<std::pair<std::uint64_t, workload::SubDatasetId>> rows;
  for (const auto& [id, size] : meta.dominant()) rows.emplace_back(size, id);
  std::sort(rows.rbegin(), rows.rend());

  std::printf("\nBlock %llu: %llu dominant movies in the hash map, %llu in "
              "the bloom filter\n\n",
              static_cast<unsigned long long>(block),
              static_cast<unsigned long long>(meta.num_dominant()),
              static_cast<unsigned long long>(meta.num_tail()));
  common::TextTable table({"rank", "sub-dataset id (hash)", "bytes in block"});
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 15); ++i) {
    char id_hex[32];
    std::snprintf(id_hex, sizeof(id_hex), "%016llx",
                  static_cast<unsigned long long>(rows[i].second));
    table.add_row({std::to_string(i + 1), id_hex, std::to_string(rows[i].first)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(ratio of rank 1 to rank %zu: %.0fx — steep dominance as in "
              "Table I)\n",
              std::min<std::size_t>(rows.size(), 15),
              static_cast<double>(rows.front().first) /
                  static_cast<double>(
                      rows[std::min<std::size_t>(rows.size(), 15) - 1].first));
  return 0;
}
