// Figure 9 reproduction: per-sub-dataset accuracy of the ElasticMap size
// estimate (Eq. 6) versus the actual sub-dataset size. Movies are sorted by
// size, largest first.
//
// Paper shape: large sub-datasets (dominant in most blocks, hash-map
// resident) are estimated almost exactly; sub-datasets below ~a block's
// dominance threshold are overestimated by the bloom-filter delta — but
// those are exactly the ones too small to cause imbalance.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "elasticmap/elastic_map.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 9: ElasticMap accuracy for individual sub-datasets",
      "estimate ~= actual for large movies; growing overestimate below the "
      "dominance threshold");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto em =
      elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});

  const auto ids = ds.truth->ids_by_size();
  std::printf("\nrank: actual(KiB) estimated(KiB) est/actual\n");
  // Log-ish sampling across ranks, as the figure's x-axis compresses tails.
  double worst_top10 = 0.0;
  for (std::size_t r = 0; r < ids.size();
       r = (r < 20 ? r + 1 : r + r / 4)) {
    const double actual =
        static_cast<double>(ds.truth->total_size(ids[r])) / 1024.0;
    const double est =
        static_cast<double>(em.estimate_total_size(ids[r])) / 1024.0;
    std::printf("%4zu: %11.1f %14.1f %10.2f\n", r, actual, est, est / actual);
    if (r < 10) worst_top10 = std::max(worst_top10, est / actual);
  }
  std::printf("\nworst est/actual among the 10 largest sub-datasets: %.2f "
              "(near 1.0 = Fig. 9's left side)\n",
              worst_top10);
  std::printf("small sub-datasets are overestimated (bloom delta), matching "
              "the paper's divergence below ~32 MB — harmless for balance, "
              "since they are too small to overload a node.\n");
  return 0;
}
