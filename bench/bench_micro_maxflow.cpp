// Micro-benchmark: Dinic max-flow scaling on bipartite assignment networks
// of increasing size (the cost of the paper's Ford–Fulkerson "optimal"
// variant, which motivates why Algorithm 1's greedy is the default).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "graph/assignment.hpp"
#include "graph/maxflow.hpp"

namespace {

using namespace datanet;

void BM_DinicAssignmentNetwork(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto blocks = static_cast<std::size_t>(state.range(1));
  common::Rng rng(13);
  std::vector<graph::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    graph::BlockVertex v;
    v.block_id = j;
    v.weight = 10 + rng.bounded(5000);
    while (v.hosts.size() < 3) {
      const auto n = static_cast<dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  const graph::BipartiteGraph g(nodes, std::move(bs));
  std::uint64_t capacity = 0;
  for (auto _ : state) {
    const auto res = graph::balanced_assignment(g);
    capacity = res.fractional_capacity;
    benchmark::DoNotOptimize(res);
  }
  state.counters["capacity"] = static_cast<double>(capacity);
  state.counters["ideal"] =
      static_cast<double>(g.total_weight()) / static_cast<double>(nodes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}

BENCHMARK(BM_DinicAssignmentNetwork)
    ->Args({8, 64})
    ->Args({32, 256})
    ->Args({128, 1024});

void BM_DinicRawGrid(benchmark::State& state) {
  // Layered grid network: s -> L1 (n) -> L2 (n) -> t with random capacities.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    common::Rng rng(17);
    graph::MaxFlow mf(2 * n + 2);
    const std::uint32_t s = 2 * n, t = 2 * n + 1;
    for (std::uint32_t i = 0; i < n; ++i) {
      mf.add_edge(s, i, 1 + rng.bounded(100));
      mf.add_edge(n + i, t, 1 + rng.bounded(100));
      for (std::uint32_t j = 0; j < 4; ++j) {
        mf.add_edge(i, n + static_cast<std::uint32_t>(rng.bounded(n)),
                    1 + rng.bounded(50));
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mf.solve(s, t));
  }
}
BENCHMARK(BM_DinicRawGrid)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
