// Section V-A-4 comparator: runtime workload rebalancing (SkewTune-style)
// versus DataNet's proactive schedule. The paper observes that migrating a
// locality-scheduled selection to balance "almost every cluster node will
// transfer or receive sub-datasets and the overall percentage of data
// migration is more than 30%", network time the proactive schedule never
// spends — and the migration repeats for every sub-dataset analysis, while
// DataNet's single raw-data scan serves all of them.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "datanet/rebalance.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Section V-A-4: runtime rebalancing vs DataNet",
      "post-hoc migration moves >30% of the filtered data and touches almost "
      "every node");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  constexpr double kNetSecondsPerMib = 0.4;

  common::TextTable table({"sub-dataset", "scheduler", "migrated", "nodes touched",
                           "migration time (s)"});
  for (const std::size_t rank : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    const auto& key = ds.hot_keys[rank];

    scheduler::LocalityScheduler base(7);
    const auto sel_base =
        benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
    const auto plan_base = core::plan_rebalance(sel_base.node_filtered_bytes);

    const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    scheduler::DataNetScheduler dn;
    const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);
    const auto plan_dn = core::plan_rebalance(sel_dn.node_filtered_bytes);

    table.add_row({key, "locality+migrate",
                   common::fmt_percent(plan_base.migrated_fraction()),
                   std::to_string(plan_base.nodes_touched) + "/" +
                       std::to_string(cfg.num_nodes),
                   common::fmt_double(
                       plan_base.migration_seconds(kNetSecondsPerMib) *
                           cfg.effective_time_scale(),
                       1)});
    table.add_row({key, "DataNet (proactive)",
                   common::fmt_percent(plan_dn.migrated_fraction()),
                   std::to_string(plan_dn.nodes_touched) + "/" +
                       std::to_string(cfg.num_nodes),
                   common::fmt_double(plan_dn.migration_seconds(kNetSecondsPerMib) *
                                          cfg.effective_time_scale(),
                                      1)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("DataNet schedules the balance up front from one ElasticMap "
              "scan; the migration alternative pays network time per "
              "sub-dataset analysis.\n");
  return 0;
}
