// Micro-benchmarks + ablation for the schedulers: assignment latency of the
// locality baseline, Algorithm 1 (greedy), and the max-flow variant, plus a
// quality ablation reporting the achieved balance of each on one clustered
// instance (the DESIGN.md "greedy vs flow vs baseline" ablation).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace datanet;

graph::BipartiteGraph make_graph(std::uint32_t nodes, std::size_t blocks,
                                 std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<graph::BlockVertex> bs;
  const std::size_t hot = blocks / 4;
  for (std::size_t j = 0; j < blocks; ++j) {
    graph::BlockVertex v;
    v.block_id = j;
    v.weight = j < hot ? 2000 + rng.bounded(8000) : rng.bounded(60);
    while (v.hosts.size() < 3) {
      const auto n = static_cast<dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  return graph::BipartiteGraph(nodes, std::move(bs));
}

std::vector<std::uint64_t> unit_bytes(const graph::BipartiteGraph& g) {
  return std::vector<std::uint64_t>(g.num_blocks(), 1 << 20);
}

template <typename Sched>
void run_assignment(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::uint32_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)), 11);
  const auto bytes = unit_bytes(g);
  double cv = 0.0;
  for (auto _ : state) {
    Sched sched;
    const auto rec = scheduler::drain(sched, g, bytes);
    benchmark::DoNotOptimize(rec);
    std::vector<double> loads(rec.node_load.begin(), rec.node_load.end());
    cv = stats::summarize(loads).coeff_variation();
  }
  state.counters["balance_cv"] = cv;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}

void BM_LocalityAssign(benchmark::State& state) {
  run_assignment<scheduler::LocalityScheduler>(state);
}
void BM_DataNetAssign(benchmark::State& state) {
  run_assignment<scheduler::DataNetScheduler>(state);
}
void BM_FlowAssign(benchmark::State& state) {
  run_assignment<scheduler::FlowScheduler>(state);
}

BENCHMARK(BM_LocalityAssign)->Args({32, 256})->Args({128, 2048});
BENCHMARK(BM_DataNetAssign)->Args({32, 256})->Args({128, 2048});
BENCHMARK(BM_FlowAssign)->Args({32, 256})->Args({128, 2048});

}  // namespace

BENCHMARK_MAIN();
