// Hot-path speed recovery bench (PR 6): real-wall numbers for the four
// optimizations this PR stacks on the selection path —
//
//   1. kernel sweep    — filter_lines pinned to each available scan kernel
//                        (scalar memchr reference, SSE2, AVX2) plus the
//                        decode-every-line reference, MB/s over the movie
//                        corpus;
//   2. copy vs zero-copy — the old per-task `std::string(block)` copy
//                        before filtering vs filtering the DFS-owned bytes
//                        in place;
//   3. armed vs unarmed — full selection with an armed-but-empty fault
//                        policy (tracked attempt loop) vs NoFaults (the
//                        bookkeeping-free fast path), with a report
//                        equality check;
//   4. thread scaling  — selection wall at 1/2/4/8 engine threads.
//
// Wall times are host-dependent; every simulated figure and all report
// bytes are deterministic. The machine-readable twin of this bench is the
// "hotpath" section of tools/bench_report (-> BENCH_PR6.json).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/simd_scan.hpp"
#include "dfs/fault_injector.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-N wall time for `fn`; best-of smooths scheduler noise on shared
// hosts better than a mean does.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Hot-path speed recovery: SIMD scan, zero-copy, lazy bookkeeping",
      "selection wall time tracks the scan kernel, not the bookkeeping");

  const auto cfg = benchutil::paper_config();
  auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const std::string key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto& blocks = ds.dfs->blocks_of(ds.path);

  std::uint64_t corpus_bytes = 0;
  for (const dfs::BlockId b : blocks) corpus_bytes += ds.dfs->read_block(b).size();
  const double corpus_mib = static_cast<double>(corpus_bytes) / (1024.0 * 1024.0);

  // ---- 1. kernel sweep ------------------------------------------------
  std::printf("\n[filter_lines kernel sweep] corpus %.1f MiB, key \"%s\"\n",
              corpus_mib, key.c_str());
  const common::ScanKernel kernels[] = {common::ScanKernel::kScalar,
                                        common::ScanKernel::kSse2,
                                        common::ScanKernel::kAvx2};
  for (const auto kernel : kernels) {
    if (!common::scan_kernel_available(kernel)) {
      std::printf("  %-18s unavailable on this host/build\n",
                  common::scan_kernel_name(kernel));
      continue;
    }
    std::uint64_t matched = 0;
    const double secs = best_of(5, [&] {
      matched = 0;
      std::string out;
      for (const dfs::BlockId b : blocks) {
        out.clear();
        matched += core::filter_lines(ds.dfs->read_block(b), key, out, kernel);
      }
    });
    std::printf("  %-18s %8.1f MiB/s  (%.4fs, %llu bytes matched)%s\n",
                common::scan_kernel_name(kernel), corpus_mib / secs, secs,
                static_cast<unsigned long long>(matched),
                kernel == common::active_scan_kernel() ? "  <- active" : "");
  }
  {
    std::uint64_t matched = 0;
    const double secs = best_of(5, [&] {
      matched = 0;
      std::string out;
      for (const dfs::BlockId b : blocks) {
        out.clear();
        matched += core::filter_lines_decode_all(ds.dfs->read_block(b), key, out);
      }
    });
    std::printf("  %-18s %8.1f MiB/s  (%.4fs, %llu bytes matched)\n",
                "decode-all ref", corpus_mib / secs, secs,
                static_cast<unsigned long long>(matched));
  }

  // ---- 2. copy vs zero-copy -------------------------------------------
  std::printf("\n[block read: copy vs zero-copy]\n");
  const double copy_secs = best_of(5, [&] {
    std::string out;
    for (const dfs::BlockId b : blocks) {
      out.clear();
      const std::string owned(ds.dfs->read_block(b));  // the pre-PR6 copy
      (void)core::filter_lines(owned, key, out);
    }
  });
  const double zero_secs = best_of(5, [&] {
    std::string out;
    for (const dfs::BlockId b : blocks) {
      out.clear();
      (void)core::filter_lines(ds.dfs->read_block(b), key, out);
    }
  });
  std::printf("  with per-task copy   %.4fs\n", copy_secs);
  std::printf("  zero-copy view       %.4fs   (%.2fx)\n", zero_secs,
              copy_secs / zero_secs);

  // ---- 3. armed vs unarmed fault policy --------------------------------
  std::printf("\n[resilience bookkeeping: armed vs unarmed, clean run]\n");
  scheduler::DataNetScheduler sched;
  core::SelectionResult unarmed_result;
  const double unarmed_secs = best_of(3, [&] {
    unarmed_result =
        benchutil::run_selection(*ds.dfs, ds.path, key, sched, &net, cfg);
  });
  core::SelectionResult armed_result;
  const double armed_secs = best_of(3, [&] {
    dfs::FaultInjector injector(*ds.dfs, {});  // empty plan, still armed
    core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    core::InjectedFaults faults(injector);
    core::AnalyticBackend timing;
    armed_result = core::SelectionRuntime(read, faults, timing)
                       .run(*ds.dfs, ds.path, key, sched, &net, cfg);
  });
  const bool identical =
      mapred::report_to_json(unarmed_result.report, true) ==
          mapred::report_to_json(armed_result.report, true) &&
      unarmed_result.node_local_data == armed_result.node_local_data;
  std::printf("  armed (tracked loop) %.4fs\n", armed_secs);
  std::printf("  unarmed (fast path)  %.4fs   (%.2fx, reports %s)\n",
              unarmed_secs, armed_secs / unarmed_secs,
              identical ? "bit-identical" : "DIVERGED -- BUG");

  // ---- 4. thread scaling ----------------------------------------------
  std::printf("\n[selection wall vs engine threads]\n");
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto tcfg = cfg;
    tcfg.execution_threads = threads;
    const double secs = best_of(3, [&] {
      (void)benchutil::run_selection(*ds.dfs, ds.path, key, sched, &net, tcfg);
    });
    std::printf("  threads=%u  %.4fs\n", threads, secs);
  }
  return identical ? 0 : 1;
}
