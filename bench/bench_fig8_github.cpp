// Figure 8 reproduction: GitHub event-log data (Section V-A-4). The
// "IssueEvent" sub-dataset is NOT content-clustered — it appears throughout
// the log — but its per-block density still fluctuates, so the workload is
// imbalanced and DataNet still helps, though less than on the movie data.
//
// Paper shape: Fig. 8a per-block sizes vary several-fold with no clustered
// prefix; TopK longest map time 125 s without DataNet vs 107 s with
// (a modest ~14% gain vs ~42% on movies).

#include <algorithm>
#include <cstdio>

#include "apps/topk_search.hpp"
#include "bench_util.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 8: GitHub IssueEvent — imbalanced without content clustering",
      "per-block density fluctuates but is spread over all blocks; longest "
      "TopK map time 125 s -> 107 s with DataNet");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_github_dataset(cfg, /*num_blocks=*/128);
  const std::string key = "IssueEvent";
  const auto id = workload::subdataset_id(key);

  // ---- Fig. 8a: per-block sizes ----
  const auto dist = ds.truth->distribution(id);
  std::printf("\nFig 8a: size of IssueEvent data per block (KiB), %zu blocks\n",
              dist.size());
  for (std::size_t b = 0; b < dist.size(); ++b) {
    std::printf("%5zu: %.2f\n", b, static_cast<double>(dist[b]) / 1024.0);
  }
  std::size_t nonzero = 0;
  for (const auto v : dist) nonzero += (v > 0);
  const auto mx = *std::max_element(dist.begin(), dist.end());
  std::vector<double> d(dist.begin(), dist.end());
  const auto s = stats::summarize(d);
  std::printf("\nblocks containing IssueEvent: %zu/%zu (no clustering); "
              "max/mean density = %.2f\n",
              nonzero, dist.size(), static_cast<double>(mx) / s.mean);

  // ---- Fig. 8b + map-time comparison ----
  // Only ~22 event types exist, so the realistic ElasticMap keeps most of
  // them exactly (the hash map is tiny); alpha = 0.6.
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.6});
  const auto job = apps::make_topk_search_job("fix crash in parser", 10);

  scheduler::LocalityScheduler base(7);
  const auto without =
      core::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
  scheduler::DataNetScheduler dn;
  const auto with = core::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);

  std::printf("\nFig 8b: filtered IssueEvent bytes per node (KiB)\n");
  std::printf("node  without  with\n");
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    std::printf(
        "%4u  %7.1f  %7.1f\n", n,
        static_cast<double>(without.selection.node_filtered_bytes[n]) / 1024.0,
        static_cast<double>(with.selection.node_filtered_bytes[n]) / 1024.0);
  }

  const auto max_map = [](const mapred::JobReport& r) {
    return *std::max_element(r.node_map_seconds.begin(), r.node_map_seconds.end());
  };
  const double wo = max_map(without.analysis);
  const double wi = max_map(with.analysis);
  std::printf("\nlongest TopK map time: without = %.1f s, with = %.1f s "
              "(%.1f%% improvement; paper: 125 s -> 107 s = 14.4%%)\n",
              wo, wi, 100.0 * (1.0 - wi / wo));
  std::printf("(compare with the ~40%%+ movie-dataset gain: weaker clustering "
              "=> smaller benefit, as the paper reports)\n");
  return 0;
}
