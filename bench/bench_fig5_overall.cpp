// Figure 5 reproduction on the 32-node / 256-block movie dataset:
//   (a) overall execution time of MovingAverage, WordCount, Histogram and
//       TopKSearch with and without DataNet;
//   (b) the target sub-dataset's size over the HDFS blocks;
//   (c) the filtered workload per cluster node under both schedulers.
//
// Paper shape: DataNet wins everywhere; improvements ~20% (MovingAverage),
// ~39% (WordCount), ~41% (Histogram), ~42% (TopK); (c) shows the locality
// baseline with several-fold node-to-node spread and DataNet nearly flat.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apps/histogram.hpp"
#include "apps/moving_average.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "datanet/selection_runtime.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 5: overall comparison on a 32-node cluster",
      "DataNet improves MovingAverage/WordCount/Histogram/TopK by "
      "20/39.1/40.6/42 percent");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/256,
                                           /*num_movies=*/2000);
  const auto& key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  // ---- Fig. 5a ----
  struct JobSpec {
    const char* name;
    mapred::Job job;
  };
  std::vector<JobSpec> jobs;
  jobs.push_back({"MovingAverage", apps::make_moving_average_job(86400 * 7)});
  jobs.push_back({"WordCount", apps::make_word_count_job()});
  jobs.push_back({"Histogram", apps::make_word_histogram_job()});
  jobs.push_back({"TopKSearch", apps::make_topk_search_job(
                                    "a stunning film with great acting", 10)});

  common::TextTable overall(
      {"job", "without DataNet (s)", "with DataNet (s)", "improvement"});
  core::SelectionResult sel_base, sel_dn;
  for (auto& [name, job] : jobs) {
    scheduler::LocalityScheduler base(7);
    const auto without =
        core::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
    scheduler::DataNetScheduler dn;
    const auto with =
        core::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);
    overall.add_row(
        {name, common::fmt_double(without.total_seconds(), 1),
         common::fmt_double(with.total_seconds(), 1),
         common::fmt_percent(1.0 - with.total_seconds() / without.total_seconds())});
    sel_base = without.selection;  // identical across jobs; keep the last
    sel_dn = with.selection;
  }
  std::printf("\nFig 5a: overall execution (selection + analysis)\n%s\n",
              overall.to_string().c_str());

  // ---- Fig. 5b ----
  const auto dist = ds.truth->distribution(workload::subdataset_id(key));
  std::printf("Fig 5b: size of '%s' over %zu HDFS blocks (KiB, zero blocks "
              "omitted)\n",
              key.c_str(), dist.size());
  for (std::size_t b = 0; b < dist.size(); ++b) {
    if (dist[b] == 0) continue;
    std::printf("%5zu: %.1f\n", b, static_cast<double>(dist[b]) / 1024.0);
  }

  // ---- Fig. 5c ----
  std::printf("\nFig 5c: filtered workload per node (KiB)\n");
  std::printf("node  without  with\n");
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    std::printf("%4u  %7.1f  %7.1f\n", n,
                static_cast<double>(sel_base.node_filtered_bytes[n]) / 1024.0,
                static_cast<double>(sel_dn.node_filtered_bytes[n]) / 1024.0);
  }
  const auto summarize = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return stats::summarize(d);
  };
  const auto sb = summarize(sel_base.node_filtered_bytes);
  const auto sd = summarize(sel_dn.node_filtered_bytes);
  std::printf("\nwithout: max/mean=%.2f min/mean=%.2f cv=%.2f\n",
              sb.max_over_mean(), sb.min_over_mean(), sb.coeff_variation());
  std::printf("with:    max/mean=%.2f min/mean=%.2f cv=%.2f\n",
              sd.max_over_mean(), sd.min_over_mean(), sd.coeff_variation());

  // ---- selection filter kernel: key-prefix fast path vs full decode ----
  // Every selection run scans every candidate block through filter_lines;
  // the fast path only full-decodes lines whose key field already matches.
  {
    const auto blocks = ds.dfs->blocks_of(ds.path);
    std::uint64_t total_bytes = 0;
    for (const auto bid : blocks) total_bytes += ds.dfs->block(bid).size_bytes;
    constexpr int kReps = 5;
    const auto time_filter = [&](auto&& filter) {
      double best = 1e300;
      std::uint64_t kept = 0;
      for (int r = 0; r < kReps; ++r) {
        std::string out;
        kept = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto bid : blocks) {
          out.clear();
          kept += filter(ds.dfs->read_block(bid), key, out);
        }
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count());
      }
      return std::pair<double, std::uint64_t>{best, kept};
    };
    const auto [slow_s, slow_kept] = time_filter(core::filter_lines_decode_all);
    const auto [fast_s, fast_kept] =
        time_filter([](std::string_view data, const std::string& k,
                       std::string& out) { return core::filter_lines(data, k, out); });
    const double mib = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    std::printf("\nfilter kernel over %zu blocks (%.1f MiB, key '%s', best of "
                "%d):\n",
                blocks.size(), mib, key.c_str(), kReps);
    std::printf("  full decode   : %7.2f ms  %7.0f MiB/s\n", slow_s * 1e3,
                mib / slow_s);
    std::printf("  prefix + decode: %6.2f ms  %7.0f MiB/s  (%.2fx, identical "
                "output: %s)\n",
                fast_s * 1e3, mib / fast_s, slow_s / fast_s,
                fast_kept == slow_kept ? "yes" : "NO");
  }
  return 0;
}
