#pragma once
// Shared configuration for the figure/table reproduction binaries. All
// benches use the paper's evaluation setup scaled down: 32 worker nodes,
// 256 blocks (Section V-A), with a block size of 128 KiB standing in for
// 64 MiB (time_scale maps costs back to full-size blocks, so reported
// simulated seconds are comparable to the paper's).

#include <cstdio>
#include <string>

#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"

namespace benchutil {

// Clean-path selection (DirectReadPolicy + NoFaults + AnalyticBackend): the
// spelling every bench uses; runtime composition lives in one place.
inline datanet::core::SelectionResult run_selection(
    const datanet::dfs::MiniDfs& dfs, const std::string& path,
    const std::string& key, datanet::scheduler::TaskScheduler& sched,
    const datanet::core::DataNet* net,
    const datanet::core::ExperimentConfig& cfg) {
  datanet::core::DirectReadPolicy read(dfs, cfg.remote_read_penalty);
  datanet::core::NoFaults faults;
  datanet::core::AnalyticBackend timing;
  return datanet::core::SelectionRuntime(read, faults, timing)
      .run(dfs, path, key, sched, net, cfg);
}

inline datanet::core::ExperimentConfig paper_config() {
  datanet::core::ExperimentConfig cfg;
  cfg.num_nodes = 32;
  cfg.block_size = 128 * 1024;
  cfg.replication = 3;
  cfg.slots_per_node = 2;
  cfg.seed = 2016;  // IPDPS 2016
  return cfg;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace benchutil
