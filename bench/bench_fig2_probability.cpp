// Figure 2 reproduction: probability that a node's workload Z ~ Gamma(nk/m,
// theta) is extreme, as a function of the cluster size m, for the paper's
// parameters k = 1.2, theta = 7, n = 512 blocks. Also prints the
// Gamma(1.2, 7) density (the figure's inset).
//
// Paper shape: all four tail probabilities grow with the cluster size; at
// m = 128 the expected node counts are a few nodes below E/3 and above 2E.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "stats/gamma.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 2: imbalance probability grows with cluster size",
      "P(Z < E/3), P(Z < E/2), P(Z > 2E), P(Z > 3E) all increase with m "
      "(k = 1.2, theta = 7, n = 512)");

  constexpr double k = 1.2, theta = 7.0;
  constexpr std::uint64_t n = 512;

  common::TextTable table({"m(nodes)", "P(Z<E/3)", "P(Z<E/2)", "P(Z>2E)",
                           "P(Z>3E)", "E[nodes<E/3]", "E[nodes>2E]"});
  for (const std::uint64_t m :
       {2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull, 256ull, 384ull, 512ull}) {
    const auto z = stats::node_workload_distribution(k, theta, n, m);
    const double e = z.mean();
    table.add_row({std::to_string(m), common::fmt_double(z.cdf(e / 3.0), 4),
                   common::fmt_double(z.cdf(e / 2.0), 4),
                   common::fmt_double(z.sf(2.0 * e), 4),
                   common::fmt_double(z.sf(3.0 * e), 4),
                   common::fmt_double(static_cast<double>(m) * z.cdf(e / 3.0), 2),
                   common::fmt_double(static_cast<double>(m) * z.sf(2.0 * e), 2)});
  }
  std::printf("\n%s\n", table.to_string().c_str());

  std::printf("Inset: Gamma(k=1.2, theta=7) density\n x : f(x)\n");
  const stats::GammaDistribution g(k, theta);
  for (double x = 1.0; x <= 30.0; x += 1.0) {
    std::printf("%4.0f : %.4f\n", x, g.pdf(x));
  }

  const auto z128 = stats::node_workload_distribution(k, theta, n, 128);
  std::printf(
      "\nAt m = 128: expected nodes below E/3 = %.2f, above 2E = %.2f "
      "(paper quotes ~3.9 / ~4.0; see EXPERIMENTS.md on the E/2 pairing)\n",
      128.0 * z128.cdf(z128.mean() / 3.0), 128.0 * z128.sf(2.0 * z128.mean()));
  return 0;
}
