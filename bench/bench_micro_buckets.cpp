// Ablation: bucket-geometry choices for the single-scan dominant separator
// (DESIGN.md Section 5). The paper picks Fibonacci-spaced buckets; this
// bench compares Fibonacci, uniform, and power-of-two ladders on the same
// skewed block content, reporting (a) update throughput and (b) how sharply
// each geometry separates at a 30% target (kept fraction achieved).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "elasticmap/separator.hpp"

namespace {

using namespace datanet;

// Build explicit edge ladders by constructing separators with chosen unit
// geometry; uniform/pow2 ladders are emulated by running the separator with
// a unit whose Fibonacci ladder is then reinterpreted — instead, we measure
// the native Fibonacci ladder against denser/sparser units, which spans the
// same tradeoff (few wide buckets vs many narrow ones).
elasticmap::SeparatorOptions geometry(int kind) {
  switch (kind) {
    case 0:  // paper: unit 1 KiB, max 34 KiB (8 Fibonacci buckets)
      return {.bucket_unit = 1024, .bucket_max = 34 * 1024};
    case 1:  // dense: unit 128 B (more buckets, finer thresholds)
      return {.bucket_unit = 128, .bucket_max = 34 * 1024};
    default:  // coarse: unit 8 KiB (few buckets, blunt thresholds)
      return {.bucket_unit = 8192, .bucket_max = 64 * 1024};
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> skewed_updates() {
  common::Rng rng(7);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> updates;
  // 20 dominant sub-datasets with many updates, 2000 tail ones with few.
  for (int rep = 0; rep < 200; ++rep) {
    for (std::uint64_t id = 0; id < 20; ++id) {
      updates.emplace_back(id, 150 + rng.bounded(150));
    }
  }
  for (std::uint64_t id = 100; id < 2100; ++id) {
    updates.emplace_back(id, 20 + rng.bounded(400));
  }
  return updates;
}

void BM_BucketGeometry(benchmark::State& state) {
  const auto opts = geometry(static_cast<int>(state.range(0)));
  const auto updates = skewed_updates();
  std::uint64_t kept = 0, total = 0, edges = 0;
  for (auto _ : state) {
    elasticmap::DominantSeparator sep(opts);
    for (const auto& [id, sz] : updates) sep.add(id, sz);
    const auto threshold = sep.threshold_for_fraction(0.30);
    kept = sep.count_at_or_above(threshold);
    total = sep.num_subdatasets();
    edges = sep.bucket_edges().size();
    benchmark::DoNotOptimize(threshold);
  }
  state.counters["buckets"] = static_cast<double>(edges);
  state.counters["kept_fraction"] =
      static_cast<double>(kept) / static_cast<double>(total);
  state.counters["target_fraction"] = 0.30;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(updates.size()));
}

BENCHMARK(BM_BucketGeometry)
    ->Arg(0)  // paper Fibonacci ladder
    ->Arg(1)  // dense ladder
    ->Arg(2);  // coarse ladder

}  // namespace

BENCHMARK_MAIN();
