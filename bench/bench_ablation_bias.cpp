// Ablation of the Algorithm 1 locality rule (DESIGN.md §4b): the paper's
// strict local-first rule vs the soft locality-bias refinement at several
// bias strengths. Reports the balance achieved AND the locality preserved —
// the tradeoff the bias knob controls: bias 0 schedules like a global
// greedy (best balance, most remote reads); strict locality maximizes local
// reads but strands end-game heavy blocks.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Ablation: Algorithm 1 locality rule (strict vs soft bias)",
      "soft bias keeps assignments mostly local while fixing the end-game "
      "imbalance of strict local-first");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  common::TextTable table({"variant", "max/mean", "min/mean", "cv",
                           "local tasks", "remote tasks"});

  const auto run = [&](const char* name, scheduler::DataNetSchedulerOptions opt) {
    scheduler::DataNetScheduler sched(opt);
    const auto sel = benchutil::run_selection(*ds.dfs, ds.path, key, sched, &net, cfg);
    std::vector<double> loads(sel.node_filtered_bytes.begin(),
                              sel.node_filtered_bytes.end());
    const auto s = stats::summarize(loads);
    table.add_row({name, common::fmt_double(s.max_over_mean(), 2),
                   common::fmt_double(s.min_over_mean(), 2),
                   common::fmt_double(s.coeff_variation(), 3),
                   std::to_string(sel.assignment.local_tasks),
                   std::to_string(sel.assignment.remote_tasks)});
  };

  run("strict locality (paper verbatim)", {.strict_locality = true});
  for (const double bias : {0.0, 0.05, 0.25, 1.0, 4.0}) {
    char name[48];
    std::snprintf(name, sizeof(name), "soft, bias = %.2f x W", bias);
    run(name, {.strict_locality = false, .locality_bias = bias});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("bias ~0.25 x W keeps >90%% of tasks local at near-global "
              "balance — the library default.\n");
  return 0;
}
