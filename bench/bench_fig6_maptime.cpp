// Figure 6 reproduction: map execution times on the filtered sub-dataset.
//   (a) TopKSearch per-node map time with and without DataNet;
//   (b) MovingAverage min/avg/max map time;
//   (c) WordCount min/avg/max map time.
//
// Paper shape: without DataNet TopK spans ~5 s to ~64 s across nodes; the
// min-max gap for MovingAverage (iterate-only) is much smaller than for
// WordCount (combine-heavy) — heavier computation makes imbalance worse.

#include <cstdio>

#include "apps/moving_average.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace datanet;

struct TwoRuns {
  mapred::JobReport without;
  mapred::JobReport with;
};

TwoRuns run_both(const core::StoredDataset& ds, const std::string& key,
                 const core::DataNet& net, const mapred::Job& job,
                 const core::ExperimentConfig& cfg) {
  scheduler::LocalityScheduler base(7);
  const auto sel_base =
      benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  scheduler::DataNetScheduler dn;
  const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);
  return TwoRuns{core::run_analysis(job, sel_base, cfg),
                 core::run_analysis(job, sel_dn, cfg)};
}

stats::Summary node_summary(const mapred::JobReport& r) {
  // Nodes with zero filtered data run no map task; the paper's min is the
  // slowest *participating* node, so summarize nonzero node times.
  std::vector<double> t;
  for (const double x : r.node_map_seconds) {
    if (x > 0.0) t.push_back(x);
  }
  return stats::summarize(t);
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 6: map execution time on the filtered sub-dataset",
      "TopK spans ~5..64 s without DataNet; MovingAverage min-max gap much "
      "smaller than WordCount's");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  // ---- Fig. 6a: TopK per-node map time ----
  const auto topk = run_both(ds, key, net,
                             apps::make_topk_search_job("a stunning film", 10), cfg);
  std::printf("\nFig 6a: TopKSearch map time per node (s)\n");
  std::printf("node  without  with\n");
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    std::printf("%4u  %7.1f  %7.1f\n", n, topk.without.node_map_seconds[n],
                topk.with.node_map_seconds[n]);
  }
  const auto ts_wo = node_summary(topk.without);
  const auto ts_wi = node_summary(topk.with);
  std::printf("\nTopK without: min=%.1f avg=%.1f max=%.1f (spread %.1fx)\n",
              ts_wo.min, ts_wo.mean, ts_wo.max, ts_wo.max / ts_wo.min);
  std::printf("TopK with:    min=%.1f avg=%.1f max=%.1f (spread %.1fx)\n",
              ts_wi.min, ts_wi.mean, ts_wi.max, ts_wi.max / ts_wi.min);

  // ---- Fig. 6b/6c: MovingAverage vs WordCount min/avg/max ----
  const auto ma =
      run_both(ds, key, net, apps::make_moving_average_job(86400 * 7), cfg);
  const auto wc = run_both(ds, key, net, apps::make_word_count_job(), cfg);

  common::TextTable table({"job", "scheduler", "min (s)", "avg (s)", "max (s)",
                           "max-min gap (s)"});
  const auto add = [&](const char* job, const char* sched,
                       const stats::Summary& s) {
    table.add_row({job, sched, common::fmt_double(s.min, 1),
                   common::fmt_double(s.mean, 1), common::fmt_double(s.max, 1),
                   common::fmt_double(s.max - s.min, 1)});
  };
  add("MovingAverage", "without", node_summary(ma.without));
  add("MovingAverage", "with", node_summary(ma.with));
  add("WordCount", "without", node_summary(wc.without));
  add("WordCount", "with", node_summary(wc.with));
  std::printf("\nFig 6b/6c: min/avg/max map time\n%s\n", table.to_string().c_str());

  const auto gap = [&](const mapred::JobReport& r) {
    const auto s = node_summary(r);
    return s.max - s.min;
  };
  std::printf("gap ratio WordCount/MovingAverage (without DataNet): %.1fx — "
              "heavier computation amplifies imbalance\n",
              gap(wc.without) / gap(ma.without));
  return 0;
}
