// Figure 7 reproduction: shuffle-phase execution times for WordCount and
// TopKSearch with and without DataNet. The paper defines a shuffle task as
// alive from the first map completion until all maps finish (plus its own
// transfer), so an imbalanced map phase stretches every shuffle task.
//
// Paper shape: without DataNet the shuffle takes 4-5x longer; TopK's
// speedup exceeds WordCount's because its map phase is longer.

#include <cstdio>

#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 7: shuffle-phase execution time",
      "shuffle without DataNet is 4-5x longer; TopK speedup > WordCount "
      "speedup");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  scheduler::LocalityScheduler base(7);
  const auto sel_base =
      benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  scheduler::DataNetScheduler dn;
  const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

  common::TextTable table(
      {"job", "scheduler", "min (s)", "avg (s)", "max (s)"});
  double speedup_wc = 0.0, speedup_topk = 0.0;
  const auto add = [&](const char* name, const mapred::Job& job) {
    const auto without = core::run_analysis(job, sel_base, cfg);
    const auto with = core::run_analysis(job, sel_dn, cfg);
    const auto swo = stats::summarize(without.shuffle_task_seconds);
    const auto swi = stats::summarize(with.shuffle_task_seconds);
    table.add_row({name, "without", common::fmt_double(swo.min, 1),
                   common::fmt_double(swo.mean, 1), common::fmt_double(swo.max, 1)});
    table.add_row({name, "with", common::fmt_double(swi.min, 1),
                   common::fmt_double(swi.mean, 1), common::fmt_double(swi.max, 1)});
    return swo.mean / swi.mean;
  };
  speedup_wc = add("WordCount", datanet::apps::make_word_count_job());
  speedup_topk =
      add("TopKSearch", datanet::apps::make_topk_search_job("a stunning film", 10));

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("avg shuffle speedup: WordCount %.1fx, TopKSearch %.1fx\n",
              speedup_wc, speedup_topk);
  return 0;
}
