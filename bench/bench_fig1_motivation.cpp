// Figure 1 reproduction: (a) the distribution of one movie sub-dataset over
// the first 128 HDFS blocks of a chronologically stored review log;
// (b) the per-node workload when that sub-dataset is analyzed under default
// block-locality scheduling on a 32-node cluster.
//
// Paper shape: a small prefix of blocks (around the release date) holds most
// of the data (1a); locality scheduling then gives a few nodes several times
// the average workload (1b).

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/locality.hpp"
#include "stats/concentration.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 1: content clustering causes imbalanced computing",
      "first ~30 of 128 blocks contain most of the data; node workloads vary "
      "several-fold under locality scheduling");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/128,
                                           /*num_movies=*/2000);
  const auto& key = ds.hot_keys[0];
  const auto id = workload::subdataset_id(key);

  // ---- Fig. 1a: per-block sizes of the target sub-dataset ----
  const auto dist = ds.truth->distribution(id);
  std::printf("\nFig 1a: size of '%s' per block (KiB), %zu blocks\n",
              key.c_str(), dist.size());
  std::printf("block: size\n");
  for (std::size_t b = 0; b < dist.size(); ++b) {
    if (dist[b] == 0) continue;
    std::printf("%5zu: %.1f\n", b, static_cast<double>(dist[b]) / 1024.0);
  }
  // Concentration metrics ([25]-style collection statistics).
  const std::vector<double> dist_d(dist.begin(), dist.end());
  std::printf("\nconcentration: top 25%% of blocks hold %.1f%% of the data; "
              "gini = %.3f; normalized entropy = %.3f\n",
              100.0 * stats::concentration_ratio(dist, 0.25),
              stats::gini(std::span<const std::uint64_t>(dist)),
              stats::normalized_entropy(dist_d));

  // ---- Fig. 1b: node workload under locality scheduling ----
  scheduler::LocalityScheduler sched(7);
  const auto sel = benchutil::run_selection(*ds.dfs, ds.path, key, sched, nullptr, cfg);
  std::printf("\nFig 1b: filtered sub-dataset bytes per node (KiB), %u nodes\n",
              cfg.num_nodes);
  std::printf("node: workload\n");
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    std::printf("%4u: %.1f\n", n,
                static_cast<double>(sel.node_filtered_bytes[n]) / 1024.0);
  }
  std::vector<double> loads(sel.node_filtered_bytes.begin(),
                            sel.node_filtered_bytes.end());
  const auto s = stats::summarize(loads);
  std::printf("\nimbalance: max/mean = %.2f, min/mean = %.2f, cv = %.2f\n",
              s.max_over_mean(), s.min_over_mean(), s.coeff_variation());
  return 0;
}
