// Figure 10 reproduction: the degree of balanced computing as the hash-map
// fraction alpha sweeps from 10% to 100%. For each alpha, the target
// sub-dataset is scheduled with Algorithm 1 using ElasticMap weights, and
// the per-node workload max/min/avg (normalized to the mean) and standard
// deviation are reported.
//
// Paper shape: with only ~15% of sub-datasets in the hash map the balance is
// already satisfactory (max ~0.9+, min ~0.7 of normalized workload);
// increasing alpha beyond that barely helps.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Figure 10: workload balance vs alpha",
      "balance saturates around alpha = 15%; more hash-map memory adds "
      "little");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];

  common::TextTable table(
      {"alpha", "max/mean", "min/mean", "std/mean", "blocks scanned"});
  for (const double alpha : {0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.65,
                             0.80, 1.00}) {
    const core::DataNet net(*ds.dfs, ds.path, {.alpha = alpha});
    scheduler::DataNetScheduler sched;
    const auto sel = benchutil::run_selection(*ds.dfs, ds.path, key, sched, &net, cfg);
    std::vector<double> loads(sel.node_filtered_bytes.begin(),
                              sel.node_filtered_bytes.end());
    const auto s = stats::summarize(loads);
    table.add_row({common::fmt_percent(alpha, 0),
                   common::fmt_double(s.max_over_mean(), 2),
                   common::fmt_double(s.min_over_mean(), 2),
                   common::fmt_double(s.coeff_variation(), 3),
                   std::to_string(sel.blocks_scanned)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("(the normalized max/min flatten beyond ~15%%: content "
              "clustering concentrates the balance-relevant data in the few "
              "sub-datasets a small hash map already captures)\n");
  return 0;
}
