// Storage-layout study: content clustering is a property of how records are
// *stored*, not of the data itself. The same review stream is ingested three
// ways — chronological (the paper's setting: release-decay clustering),
// key-sorted (every sub-dataset fully contiguous, maximal clustering, the
// layout an OPASS-style reorganizer would produce), and shuffled (records
// randomly permuted, minimal clustering) — and the locality baseline's
// imbalance plus DataNet's gain are measured under each.
//
// Expected shape: baseline imbalance and DataNet's benefit both grow with
// the clustering degree (gini); the shuffled layout needs no DataNet, the
// key-sorted layout needs it most. This isolates the paper's causal claim:
// clustering causes the imbalance DataNet removes.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/concentration.hpp"
#include "stats/descriptive.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Storage-layout study: the clustering dial",
      "baseline imbalance and DataNet's gain both track the storage "
      "layout's clustering degree");

  auto cfg = benchutil::paper_config();

  workload::MovieGenOptions gopt;
  gopt.num_movies = 2000;
  gopt.num_records = static_cast<std::uint64_t>(
      256.0 * static_cast<double>(cfg.block_size) / 150.0);
  gopt.seed = cfg.seed;
  const workload::MovieLogGenerator gen(gopt);
  auto records = gen.generate();
  const auto key = gen.movie_key(0);

  common::TextTable table({"layout", "gini", "locality max/mean",
                           "DataNet max/mean", "blocks scanned (DataNet)"});

  const auto run_layout = [&](const char* name,
                              const std::vector<workload::Record>& recs) {
    dfs::DfsOptions dopt;
    dopt.block_size = cfg.block_size;
    dopt.replication = cfg.replication;
    dopt.seed = cfg.seed;
    dfs::MiniDfs fs(dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
    workload::ingest(fs, "/data", recs);
    const workload::GroundTruth truth(fs, "/data");
    const auto dist = truth.distribution(workload::subdataset_id(key));
    const double g = stats::gini(std::span<const std::uint64_t>(dist));

    scheduler::LocalityScheduler base(7);
    const auto sel_loc = benchutil::run_selection(fs, "/data", key, base, nullptr, cfg);
    const core::DataNet net(fs, "/data", {.alpha = 0.3});
    scheduler::DataNetScheduler dn;
    const auto sel_dn = benchutil::run_selection(fs, "/data", key, dn, &net, cfg);

    const auto stat = [](const std::vector<std::uint64_t>& v) {
      std::vector<double> d(v.begin(), v.end());
      return stats::summarize(d);
    };
    table.add_row(
        {name, common::fmt_double(g, 3),
         common::fmt_double(stat(sel_loc.node_filtered_bytes).max_over_mean(), 2),
         common::fmt_double(stat(sel_dn.node_filtered_bytes).max_over_mean(), 2),
         std::to_string(sel_dn.blocks_scanned) + "/" +
             std::to_string(fs.num_blocks())});
  };

  // Chronological: as generated (the paper's Flume-style setting).
  run_layout("chronological", records);

  // Key-sorted: every sub-dataset fully contiguous.
  auto sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const workload::Record& a, const workload::Record& b) {
                     return a.key < b.key;
                   });
  run_layout("key-sorted", sorted);

  // Shuffled: minimal clustering.
  auto shuffled = records;
  common::Rng rng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.bounded(i)]);
  }
  run_layout("shuffled", shuffled);

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("clustering (gini) drives both the baseline's imbalance and "
              "DataNet's pruning power — with a shuffled layout neither "
              "matters, with a key-sorted layout DataNet reads only the "
              "blocks that contain the movie.\n");
  return 0;
}
