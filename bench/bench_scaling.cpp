// Empirical companion to Figure 2 / Section II-B: the paper's Gamma analysis
// predicts that imbalance worsens as the cluster grows (same data, more
// nodes). This bench measures it: the same 256-block movie dataset is
// analyzed on 8..128-node clusters; locality scheduling's max/mean workload
// climbs with the node count while DataNet's stays flat, and the analytic
// Gamma prediction (fit from the measured per-block sizes via stats::fit) is
// printed alongside.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/gamma.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Scaling study: imbalance vs cluster size (Section II-B empirically)",
      "larger clusters make locality scheduling more imbalanced; DataNet "
      "stays flat");

  common::TextTable table({"nodes", "locality max/mean", "locality min/mean",
                           "DataNet max/mean", "analytic P(Z > 2E)"});

  for (const std::uint32_t nodes : {8u, 16u, 32u, 64u, 128u}) {
    auto cfg = benchutil::paper_config();
    cfg.num_nodes = nodes;
    const auto ds = core::make_movie_dataset(cfg, 256, 2000);
    const auto& key = ds.hot_keys[0];

    scheduler::LocalityScheduler base(7);
    const auto sel_base =
        benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
    const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    scheduler::DataNetScheduler dn;
    const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

    const auto stat = [](const std::vector<std::uint64_t>& v) {
      std::vector<double> d(v.begin(), v.end());
      return stats::summarize(d);
    };
    const auto sb = stat(sel_base.node_filtered_bytes);
    const auto sd = stat(sel_dn.node_filtered_bytes);

    // Fit Gamma(k, theta) to the nonzero per-block sizes of the sub-dataset
    // (the paper's block model) and evaluate the node-overload probability.
    std::vector<double> block_sizes;
    for (const auto v :
         ds.truth->distribution(workload::subdataset_id(key))) {
      if (v > 0) block_sizes.push_back(static_cast<double>(v) / 1024.0);
    }
    std::string analytic = "-";
    if (block_sizes.size() >= 2) {
      const auto fit = stats::fit_gamma_mle(block_sizes);
      const auto z = stats::node_workload_distribution(
          fit.shape, fit.scale, block_sizes.size(), nodes);
      analytic = common::fmt_percent(z.sf(2.0 * z.mean()), 2);
    }

    table.add_row({std::to_string(nodes), common::fmt_double(sb.max_over_mean(), 2),
                   common::fmt_double(sb.min_over_mean(), 2),
                   common::fmt_double(sd.max_over_mean(), 2), analytic});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("locality imbalance climbs with the node count exactly as the "
              "fitted Gamma model predicts; DataNet stays near-flat until the "
              "cluster outgrows the sub-dataset's heavy-block count (atomic "
              "blocks cannot be split, so past ~1 heavy block per node no "
              "schedule can be flat).\n");
  return 0;
}
