// Ablation: Hadoop-style speculative execution vs DataNet. Speculation is
// the classic reactive answer to stragglers (re-run slow tasks elsewhere);
// the paper argues reactive mitigation cannot fix a *data* imbalance — a
// node with 3x the sub-dataset bytes runs 3x longer whether or not its last
// task gets a backup. This bench quantifies that on the movie workload,
// then measures the straggler tail the SelectionRuntime's attempt layer
// handles: stalled nodes and transient read errors, recovered by timeouts
// alone vs timeouts + speculative duplicates.

#include <cstdio>

#include "apps/topk_search.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "dfs/fault_injector.hpp"
#include "mapred/engine.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"

namespace {

using namespace datanet;

// Re-run the analysis phase of a selection under an engine flag; an
// optional slow node models machine (not data) skew.
mapred::JobReport analyze(const core::SelectionResult& sel,
                          const core::ExperimentConfig& cfg, bool speculative,
                          double slow_node0_speed = 1.0) {
  mapred::Job job = apps::make_topk_search_job("a stunning film", 10);
  job.config.cost.time_scale = cfg.effective_time_scale();
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  opt.speculative = speculative;
  if (slow_node0_speed != 1.0) {
    opt.node_speed.assign(cfg.num_nodes, 1.0);
    opt.node_speed[0] = slow_node0_speed;
  }
  const mapred::Engine engine(opt);

  std::vector<mapred::InputSplit> splits;
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    const std::string_view data = sel.node_local_data[n];
    if (data.empty()) continue;
    const std::uint64_t chunk =
        std::max<std::uint64_t>(data.size() / cfg.slots_per_node, 1);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = std::min<std::size_t>(start + chunk, data.size());
      if (end < data.size()) {
        const std::size_t nl = data.find('\n', end);
        end = (nl == std::string_view::npos) ? data.size() : nl + 1;
      }
      splits.push_back({.node = n, .data = data.substr(start, end - start),
                        .charged_bytes = 0});
      start = end;
    }
  }
  return engine.run(job, splits);
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: speculative execution vs distribution-aware scheduling",
      "reactive task re-execution cannot fix a data-placement imbalance");

  auto cfg = benchutil::paper_config();
  auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];

  scheduler::LocalityScheduler base(7);
  const auto sel_base =
      benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  scheduler::DataNetScheduler dn;
  const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

  common::TextTable table({"configuration", "map phase (s)", "vs baseline"});
  const double baseline = analyze(sel_base, cfg, false).map_phase_seconds;
  const auto row = [&](const char* name, double v) {
    table.add_row({name, common::fmt_double(v, 1),
                   common::fmt_percent(1.0 - v / baseline)});
  };
  row("locality", baseline);
  row("locality + speculation", analyze(sel_base, cfg, true).map_phase_seconds);
  row("DataNet", analyze(sel_dn, cfg, false).map_phase_seconds);
  row("DataNet + speculation", analyze(sel_dn, cfg, true).map_phase_seconds);
  std::printf("\nData skew (clustered sub-dataset):\n%s\n",
              table.to_string().c_str());
  std::printf("speculation cannot shorten a node that simply holds several "
              "times more data — every one of its tasks is long; DataNet "
              "removes the imbalance that created the straggler.\n");

  // Contrast: MACHINE skew (one node at quarter speed, data balanced) is the
  // regime speculation was designed for — there it does help.
  common::TextTable machine({"configuration", "map phase (s)"});
  const double slow_plain =
      analyze(sel_dn, cfg, false, 0.25).map_phase_seconds;
  const double slow_spec = analyze(sel_dn, cfg, true, 0.25).map_phase_seconds;
  machine.add_row({"DataNet, node0 4x slow", common::fmt_double(slow_plain, 1)});
  machine.add_row(
      {"DataNet, node0 4x slow + speculation", common::fmt_double(slow_spec, 1)});
  std::printf("\nMachine skew (one 4x-slower node, balanced data):\n%s\n",
              machine.to_string().c_str());
  std::printf("the two mechanisms are complementary: DataNet fixes data "
              "skew proactively, speculation fixes machine skew reactively.\n");

  // Straggler tail through the runtime's attempt layer: two nodes stall and
  // two blocks throw transient read errors. Timeout/backoff re-dispatch
  // always recovers; speculative duplicates shorten the tail further.
  const auto straggler = [&](bool speculative) {
    const auto blocks = ds.dfs->blocks_of(ds.path);
    std::vector<dfs::FaultEvent> plan;
    plan.push_back(
        {.at_task = 0, .kind = dfs::FaultKind::kStallNode, .node = 1});
    plan.push_back(
        {.at_task = 0, .kind = dfs::FaultKind::kStallNode, .node = 2});
    // Armed before any read, on mid-file blocks the hot key is dense in.
    plan.push_back({.at_task = 0,
                    .kind = dfs::FaultKind::kTransientReadError,
                    .block = blocks[blocks.size() / 2],
                    .fail_count = 2});
    plan.push_back({.at_task = 0,
                    .kind = dfs::FaultKind::kTransientReadError,
                    .block = blocks[blocks.size() / 2 + 1],
                    .fail_count = 2});
    dfs::FaultInjector injector(*ds.dfs, std::move(plan));
    core::AttemptOptions aopt;
    aopt.speculative = speculative;
    // With the short default deadline, timeouts always beat the drain point
    // and speculation never gets a turn; the speculative configuration uses
    // a patient deadline so the duplicates race the stall instead.
    if (speculative) aopt.timeout_ticks = 1000;
    core::ChecksumRetryReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    core::InjectedFaults faults(injector);
    core::AnalyticBackend timing;
    scheduler::DataNetScheduler sched;
    return core::SelectionRuntime(read, faults, timing, aopt)
        .run(*ds.dfs, ds.path, key, sched, &net, cfg);
  };
  const auto tail_timeout = straggler(/*speculative=*/false);
  const auto tail_spec = straggler(/*speculative=*/true);
  common::TextTable tail({"configuration", "selection (s)", "timeouts",
                          "re-dispatches", "spec launched", "spec wins",
                          "degraded"});
  const auto tail_row = [&](const char* name,
                            const core::SelectionResult& r) {
    const auto& a = r.report.attempts;
    tail.add_row({name, common::fmt_double(r.report.total_seconds, 1),
                  std::to_string(a.timeouts), std::to_string(a.redispatches),
                  std::to_string(a.speculative_launched),
                  std::to_string(a.speculative_wins),
                  std::to_string(a.degraded_tasks)});
  };
  tail_row("clean DataNet selection", sel_dn);
  tail_row("stalls+transients, timeouts (8 ticks)", tail_timeout);
  tail_row("stalls+transients, speculation", tail_spec);
  std::printf("\nStraggler tail (2 stalled nodes, 2 flaky blocks):\n%s\n",
              tail.to_string().c_str());
  std::printf("no run hangs and none degrades: every straggler is detected "
              "by its deadline, re-dispatched with backoff, and (when "
              "enabled) raced by a speculative duplicate.\n");
  return 0;
}
