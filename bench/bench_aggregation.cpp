// Section IV-B future-work feature: using the ElasticMap to minimize the
// data transferred during aggregation. Reducer hosts are chosen from the
// predicted per-node map output (ElasticMap estimates) instead of spread
// content-blind; the bench compares shuffled bytes and reports how well the
// prediction tracks the actual filtered distribution.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "datanet/aggregation.hpp"
#include "scheduler/locality.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Extension: aggregation-transfer planning from ElasticMap estimates",
      "Section IV-B: 'ElasticMap can also be used to minimize the data "
      "transferred' for aggregation applications");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  common::TextTable table({"sub-dataset", "R", "round-robin transfer",
                           "planned transfer", "saved"});
  for (const std::size_t rank : {std::size_t{0}, std::size_t{3}}) {
    const auto& key = ds.hot_keys[rank];
    // The map output each node will produce under the locality baseline: the
    // filtered bytes landing on it (measured by running the selection).
    scheduler::LocalityScheduler base(7);
    const auto sel = benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);

    for (const std::uint32_t reducers : {4u, 16u}) {
      const auto naive =
          core::plan_aggregation_roundrobin(sel.node_filtered_bytes, reducers);
      const auto planned = core::plan_aggregation(sel.node_filtered_bytes, reducers);
      table.add_row(
          {key, std::to_string(reducers),
           common::format_bytes(naive.transfer_bytes) + " (" +
               common::fmt_percent(naive.transfer_fraction(), 0) + ")",
           common::format_bytes(planned.transfer_bytes) + " (" +
               common::fmt_percent(planned.transfer_fraction(), 0) + ")",
           common::fmt_percent(1.0 - static_cast<double>(planned.transfer_bytes) /
                                         static_cast<double>(naive.transfer_bytes))});
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("placing reducers on the nodes predicted (via ElasticMap) to "
              "hold the most sub-dataset data keeps their partitions local.\n");
  return 0;
}
