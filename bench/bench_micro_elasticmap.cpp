// Micro-benchmarks for the ElasticMap core: single-scan construction
// throughput (the paper's O(m*n) claim — linear in the raw data), query
// latency, and serialization.

#include <benchmark/benchmark.h>

#include "datanet/experiment.hpp"
#include "elasticmap/elastic_map.hpp"
#include "elasticmap/index.hpp"
#include "elasticmap/separator.hpp"

namespace {

using namespace datanet;

const core::StoredDataset& dataset() {
  static const core::StoredDataset ds = [] {
    core::ExperimentConfig cfg;
    cfg.num_nodes = 16;
    cfg.block_size = 64 * 1024;
    return core::make_movie_dataset(cfg, /*num_blocks=*/64, /*num_movies=*/2000);
  }();
  return ds;
}

void BM_ElasticMapBuild(benchmark::State& state) {
  const auto& ds = dataset();
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto em = elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = alpha});
    benchmark::DoNotOptimize(em);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(ds.dfs->total_bytes()));
}
BENCHMARK(BM_ElasticMapBuild)->Arg(10)->Arg(30)->Arg(100);

void BM_ElasticMapQueryDistribution(benchmark::State& state) {
  const auto& ds = dataset();
  static const auto em =
      elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto id = workload::subdataset_id(ds.hot_keys[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.distribution(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElasticMapQueryDistribution);

void BM_ElasticMapEstimateTotal(benchmark::State& state) {
  const auto& ds = dataset();
  static const auto em =
      elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto id = workload::subdataset_id(ds.hot_keys[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(em.estimate_total_size(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElasticMapEstimateTotal);

void BM_BlockMetaSerialize(benchmark::State& state) {
  const auto& ds = dataset();
  static const auto em =
      elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
      const auto s = em.block_meta(b).serialize();
      bytes += s.size();
      benchmark::DoNotOptimize(s);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BlockMetaSerialize);

void BM_ElasticMapBuildParallel(benchmark::State& state) {
  const auto& ds = dataset();
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto em = elasticmap::ElasticMapArray::build(
        *ds.dfs, ds.path, {.alpha = 0.3, .build_threads = threads});
    benchmark::DoNotOptimize(em);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.dfs->total_bytes()));
}
BENCHMARK(BM_ElasticMapBuildParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IndexBuildAndQuery(benchmark::State& state) {
  const auto& ds = dataset();
  static const auto em =
      elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  static const elasticmap::SubDatasetIndex index(em);
  const auto id = workload::subdataset_id(ds.hot_keys[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.dominant_blocks(id));
    benchmark::DoNotOptimize(index.exact_total(id));
  }
  state.counters["index_bytes"] = static_cast<double>(index.memory_bytes());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexBuildAndQuery);

// Single-scan separator throughput: the O(m) bucket update path.
void BM_SeparatorAdd(benchmark::State& state) {
  const auto opts = elasticmap::SeparatorOptions::for_block_size(64ull << 20);
  datanet::common::Rng rng(4);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> updates(100000);
  for (auto& [id, sz] : updates) {
    id = rng.bounded(5000);
    sz = 20 + rng.bounded(200);
  }
  for (auto _ : state) {
    elasticmap::DominantSeparator sep(opts);
    for (const auto& [id, sz] : updates) sep.add(id, sz);
    benchmark::DoNotOptimize(sep.threshold_for_fraction(0.3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(updates.size()));
}
BENCHMARK(BM_SeparatorAdd);

}  // namespace

BENCHMARK_MAIN();
