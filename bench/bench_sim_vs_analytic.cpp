// Robustness check: are the paper's conclusions an artifact of the analytic
// cost model? The selection phase is timed under two independent backends —
// the closed-form engine (mapred::Engine-style accounting) and the
// discrete-event cluster simulator (FIFO disks, NIC-bounded remote reads,
// genuine pull-on-slot-free ordering) — for both schedulers. The claim that
// must survive: DataNet balances the filtered sub-dataset and the locality
// baseline does not, under either timing model.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "datanet/selection_runtime.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "sim/job_sim.hpp"
#include "sim/selection_sim.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Cross-validation: analytic engine vs discrete-event simulator",
      "the DataNet-vs-locality conclusion is timing-model independent");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const auto& key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto graph = net.scheduling_graph(key);

  // One SelectionRuntime; only the TimingBackend changes between the two
  // halves of the table. Same read policy, same (empty) fault policy, same
  // schedulers.
  core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  core::NoFaults faults;

  // ---- analytic backend (the default harness) ----
  core::AnalyticBackend analytic;
  const core::SelectionRuntime analytic_rt(read, faults, analytic);
  scheduler::LocalityScheduler base_a(7);
  const auto sel_loc =
      analytic_rt.run(*ds.dfs, ds.path, key, base_a, nullptr, cfg);
  scheduler::DataNetScheduler dn_a;
  const auto sel_dn = analytic_rt.run(*ds.dfs, ds.path, key, dn_a, &net, cfg);

  // ---- event-driven backend ----
  sim::SelectionSimOptions opt;
  opt.cluster.num_nodes = cfg.num_nodes;
  opt.cluster.node.slots = cfg.slots_per_node;
  // Rescale the simulated hardware so one scaled-down block costs what a
  // 64 MiB block would (same convention as the analytic time_scale).
  opt.cluster.node.disk_mbps /= cfg.effective_time_scale();
  opt.cluster.node.nic_mbps /= cfg.effective_time_scale();
  opt.cpu_seconds_per_mib *= cfg.effective_time_scale();
  sim::EventSimBackend event(*ds.dfs, opt);
  const core::SelectionRuntime event_rt(read, faults, event);
  scheduler::LocalityScheduler base_s(7);
  const auto ev_loc = event_rt.run_graph(*ds.dfs, graph, key, base_s, cfg,
                                         /*materialize=*/false);
  const auto sim_loc = event.last_sim();
  scheduler::DataNetScheduler dn_s;
  const auto ev_dn = event_rt.run_graph(*ds.dfs, graph, key, dn_s, cfg,
                                        /*materialize=*/false);
  const auto sim_dn = event.last_sim();

  const auto cv = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return stats::summarize(d).coeff_variation();
  };
  const auto maxmean = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return stats::summarize(d).max_over_mean();
  };

  common::TextTable table({"backend", "scheduler", "filtered max/mean",
                           "filtered cv", "phase time (s)", "remote reads"});
  table.add_row({"analytic", "locality",
                 common::fmt_double(maxmean(sel_loc.node_filtered_bytes), 2),
                 common::fmt_double(cv(sel_loc.node_filtered_bytes), 3),
                 common::fmt_double(sel_loc.report.total_seconds, 1),
                 std::to_string(sel_loc.assignment.remote_tasks)});
  table.add_row({"analytic", "datanet",
                 common::fmt_double(maxmean(sel_dn.node_filtered_bytes), 2),
                 common::fmt_double(cv(sel_dn.node_filtered_bytes), 3),
                 common::fmt_double(sel_dn.report.total_seconds, 1),
                 std::to_string(sel_dn.assignment.remote_tasks)});
  table.add_row({"event-sim", "locality",
                 common::fmt_double(maxmean(ev_loc.assignment.node_load), 2),
                 common::fmt_double(cv(ev_loc.assignment.node_load), 3),
                 common::fmt_double(sim_loc.makespan, 1),
                 std::to_string(sim_loc.remote_reads)});
  table.add_row({"event-sim", "datanet",
                 common::fmt_double(maxmean(ev_dn.assignment.node_load), 2),
                 common::fmt_double(cv(ev_dn.assignment.node_load), 3),
                 common::fmt_double(sim_dn.makespan, 1),
                 std::to_string(sim_dn.remote_reads)});
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("both backends agree: locality scheduling leaves a several-fold "
              "filtered-byte spread that DataNet flattens. (Phase-time scales "
              "differ by construction — the backends model different "
              "hardware; the *ordering* is the claim.)\n");

  // ---- Fig. 7 under event timing: analysis job over the filtered data ----
  sim::JobSimOptions jopt;
  jopt.cluster = opt.cluster;
  jopt.map_cpu_seconds_per_mib = 0.3 * cfg.effective_time_scale();
  jopt.output_ratio = 0.05;
  jopt.num_reducers = 8;
  const auto job_loc =
      sim::simulate_analysis_job(ev_loc.assignment.node_load, jopt);
  const auto job_dn =
      sim::simulate_analysis_job(ev_dn.assignment.node_load, jopt);
  std::printf("\nevent-driven analysis job (WordCount-like):\n");
  std::printf("  locality: map %.1f s, shuffle span %.1f s, total %.1f s\n",
              job_loc.map_phase, job_loc.shuffle_span(), job_loc.makespan);
  std::printf("  datanet : map %.1f s, shuffle span %.1f s, total %.1f s\n",
              job_dn.map_phase, job_dn.shuffle_span(), job_dn.makespan);
  std::printf("  shuffle stretch without DataNet: %.1fx (the Fig. 7 effect "
              "reproduced under event timing)\n",
              job_loc.shuffle_span() / job_dn.shuffle_span());
  return 0;
}
