// Amortization study (the paper's V-A-4 closing argument): "DataNet will
// scan the raw data once to build all sub-dataset distributions, while the
// method of dynamic adjustment will migrate the workload for each
// sub-dataset analysis during runtime." This bench charges DataNet its
// one-time build scan and compares cumulative cost against (a) the plain
// locality baseline and (b) locality + per-analysis migration, over a
// sequence of analyses of different movies.

#include <cstdio>

#include "apps/word_count.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "datanet/rebalance.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Amortization: one meta-data scan vs per-analysis migration",
      "the ElasticMap build is paid once; migration costs recur per "
      "analysis");

  auto cfg = benchutil::paper_config();
  const auto ds = core::make_movie_dataset(cfg, 256, 2000);

  // One-time DataNet build, charged as a full I/O scan of the raw data
  // spread over the cluster (same cost model as a selection map phase).
  const double scan_seconds =
      cfg.effective_time_scale() * 0.02 *  // io_s_per_mib of the filter job
      static_cast<double>(ds.dfs->total_bytes()) / (1024.0 * 1024.0) /
      (cfg.num_nodes * cfg.slots_per_node);
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  const auto job = apps::make_word_count_job();
  constexpr double kNetSecondsPerMib = 0.4;

  double cum_baseline = 0.0;
  double cum_migrate = scan_seconds * 0.0;  // migration needs no meta scan
  double cum_datanet = scan_seconds;        // one-time build
  common::TextTable table({"analyses", "locality cum (s)",
                           "locality+migration cum (s)", "DataNet cum (s)"});

  for (std::size_t i = 0; i < 8; ++i) {
    const auto& key = ds.hot_keys[i];
    scheduler::LocalityScheduler base(7 + i);
    const auto without =
        core::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
    scheduler::DataNetScheduler dn;
    const auto with =
        core::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);

    cum_baseline += without.total_seconds();
    cum_datanet += with.total_seconds();
    // Migration variant: locality selection, then migrate to balance, then
    // the analysis runs at DataNet-like balance.
    const auto plan =
        core::plan_rebalance(without.selection.node_filtered_bytes);
    cum_migrate += without.selection.report.total_seconds +
                   plan.migration_seconds(kNetSecondsPerMib) *
                       cfg.effective_time_scale() +
                   with.analysis.total_seconds;

    table.add_row({std::to_string(i + 1), common::fmt_double(cum_baseline, 1),
                   common::fmt_double(cum_migrate, 1),
                   common::fmt_double(cum_datanet, 1)});
  }
  std::printf("\n(one-time ElasticMap build scan charged to DataNet: %.1f s)\n\n",
              scan_seconds);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("DataNet's single scan amortizes across analyses; migration "
              "pays network time every run and never catches up.\n");
  return 0;
}
