// Micro-benchmarks: Bloom filter insert/query throughput and the
// memory/accuracy tradeoff behind ElasticMap's tail storage.

#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.hpp"
#include "common/rng.hpp"

namespace {

using datanet::bloom::BloomFilter;

void BM_BloomInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  datanet::common::Rng rng(1);
  for (auto _ : state) {
    BloomFilter f(n, 0.01);
    for (std::uint64_t i = 0; i < n; ++i) f.insert(rng());
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BloomInsert)->Arg(1000)->Arg(100000);

void BM_BloomQueryHit(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  BloomFilter f(n, 0.01);
  datanet::common::Rng rng(2);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng();
    f.insert(k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.maybe_contains(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQueryHit)->Arg(1000)->Arg(100000);

void BM_BloomQueryMiss(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  BloomFilter f(n, 0.01);
  datanet::common::Rng rng(3);
  for (std::uint64_t i = 0; i < n; ++i) f.insert(rng());
  datanet::common::Rng probe(999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.maybe_contains(probe()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQueryMiss)->Arg(100000);

// The paper's Section III-A comparison: ~10 bits/key (bloom, eps = 1%)
// versus ~85 bits/key (hash map). Reported as bytes for 10k sub-datasets.
void BM_BloomMemoryPer10kKeys(benchmark::State& state) {
  for (auto _ : state) {
    BloomFilter f(10000, 0.01);
    benchmark::DoNotOptimize(f.memory_bytes());
  }
  state.counters["bloom_bytes"] =
      static_cast<double>(BloomFilter(10000, 0.01).memory_bytes());
  state.counters["hashmap_bytes"] = 10000.0 * 16.0;  // id + size, no overhead
}
BENCHMARK(BM_BloomMemoryPer10kKeys);

}  // namespace

BENCHMARK_MAIN();
