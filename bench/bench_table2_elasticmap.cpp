// Table II reproduction: ElasticMap memory efficiency vs accuracy as the
// hash-map fraction alpha varies. The paper sweeps alpha = 51/40/31/25/21 %
// and reports accuracy chi from 97% down to 80% and raw-to-meta
// representation ratios from 1857 up to 3497.
//
// Shape to match: accuracy falls and the representation ratio rises
// monotonically as alpha shrinks. (Absolute ratios differ: our scaled
// blocks are 128 KiB, not 64 MiB, so each block holds fewer sub-datasets.)

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "elasticmap/cost_model.hpp"
#include "elasticmap/elastic_map.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Table II: the efficiency of ElasticMap",
      "alpha 51..21% -> accuracy 97..80%, representation ratio 1857..3497");

  // Larger scaled blocks (512 KiB) for this sweep: accuracy depends on the
  // records-per-block ratio, and bigger blocks sit closer to the paper's
  // 64 MiB regime.
  auto cfg = benchutil::paper_config();
  cfg.block_size = 512 * 1024;
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/128,
                                           /*num_movies=*/2000);

  std::vector<std::pair<workload::SubDatasetId, std::uint64_t>> totals;
  for (const auto sid : ds.truth->ids_by_size()) {
    totals.emplace_back(sid, ds.truth->total_size(sid));
  }

  common::TextTable table({"alpha", "accuracy (chi)", "repr. ratio",
                           "meta KiB", "Eq.5 predicted KiB",
                           "avg dominant/block"});
  for (const double alpha : {0.51, 0.40, 0.31, 0.25, 0.21, 0.15, 0.10}) {
    const auto em =
        elasticmap::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = alpha});
    std::uint64_t dominant = 0, subdatasets = 0;
    for (std::uint64_t b = 0; b < em.num_blocks(); ++b) {
      dominant += em.block_meta(b).num_dominant();
      subdatasets +=
          em.block_meta(b).num_dominant() + em.block_meta(b).num_tail();
    }
    // Eq. 5 with the realized alpha and our serialized record size.
    elasticmap::CostModelParams model;
    model.alpha =
        static_cast<double>(dominant) / static_cast<double>(subdatasets);
    model.hashmap_record_bits = 128.0;
    model.hashmap_load_factor = 1.0;
    const auto predicted = elasticmap::elasticmap_cost_bytes(subdatasets, model);
    table.add_row(
        {common::fmt_percent(alpha, 0), common::fmt_percent(em.accuracy_chi(totals)),
         common::fmt_double(em.representation_ratio(), 0),
         common::fmt_double(static_cast<double>(em.memory_bytes()) / 1024.0, 1),
         common::fmt_double(static_cast<double>(predicted) / 1024.0, 1),
         common::fmt_double(static_cast<double>(dominant) /
                                static_cast<double>(em.num_blocks()),
                            1)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("trend check: accuracy decreases and representation ratio "
              "increases as alpha shrinks, as in Table II.\n");
  return 0;
}
