// datanetd serving-path bench (PR 7): an in-process Server on loopback, N
// tenant threads each driving its own connection with a mostly-hot-key
// query mix, reporting aggregate qps and client-observed p50/p99 latency.
// The acceptance bar is >= 1000 qps on loopback; the wire round trip, frame
// CRC, admission, DRR dispatch, cached-ElasticMap selection, and reply
// serialization are all on the measured path. Wall numbers are
// host-dependent; digests are checked against an in-process golden run so
// the bench also proves the served results are the right ones. The
// machine-readable twin is the "server" section of tools/bench_report
// (-> BENCH_PR7.json).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "server/chaos_proxy.hpp"
#include "server/client.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace srv = datanet::server;

struct TenantRun {
  std::vector<double> latency_micros;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using namespace datanet;
  benchutil::print_header(
      "datanetd loopback serving path: qps and client-observed latency",
      "frame + admission + DRR + cached-ElasticMap selection per query");

  srv::ServerOptions opts;
  opts.workers = 4;
  opts.default_limits = {.max_queue = 256, .max_inflight = 16, .weight = 1};
  opts.cfg.num_nodes = 16;
  opts.cfg.block_size = 64 * 1024;
  opts.cfg.replication = 3;
  opts.cfg.seed = 42;
  opts.dataset_blocks = 32;
  srv::Server server(opts);
  server.start();

  const auto& hot = server.dataset().hot_keys;
  constexpr int kTenants = 4;
  constexpr int kQueriesPerTenant = 250;

  // Golden digests from the in-process path: the served numbers must match.
  std::vector<std::uint64_t> golden;
  for (const auto& key : hot) {
    srv::QueryRequest req;
    req.tenant = "golden";
    req.key = key;
    const auto out = srv::local_query(opts, req);
    golden.push_back(out.ok ? out.reply.digest : 0);
  }

  std::vector<TenantRun> runs(kTenants);
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> tenants;
    tenants.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] {
        TenantRun& run = runs[t];
        run.latency_micros.reserve(kQueriesPerTenant);
        srv::Client client(server.port());
        std::mt19937_64 rng(1000 + t);
        std::uniform_int_distribution<int> pct(0, 99);
        std::uniform_int_distribution<std::size_t> spread(0, hot.size() - 1);
        for (int q = 0; q < kQueriesPerTenant; ++q) {
          // 80% hottest key (cache-warm), 20% spread across the hot set.
          const std::size_t ki = pct(rng) < 80 ? 0 : spread(rng);
          srv::QueryRequest req;
          req.tenant = "tenant_" + std::to_string(t);
          req.key = hot[ki];
          const auto q0 = Clock::now();
          const auto result = client.query(req);
          const double micros =
              std::chrono::duration<double, std::micro>(Clock::now() - q0)
                  .count();
          if (result.ok() && result.reply.digest == golden[ki]) {
            ++run.ok;
            run.latency_micros.push_back(micros);
          } else if (result.status == srv::ClientResult::Status::kRejected) {
            ++run.rejected;
          } else {
            ++run.errors;  // transport error OR wrong digest
          }
        }
      });
    }
    for (auto& t : tenants) t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // ---- chaos section (PR 9): the same server behind a fault-injecting
  // proxy, queried through the retrying client. Reported: goodput under
  // chaos and the outcome split. The acceptance bar here is CORRECTNESS —
  // every query ends golden or typed (wrong digests fail the bench);
  // throughput under chaos is informational, the >=1000 qps gate stays on
  // the clean path above.
  constexpr int kChaosQueries = 60;
  std::uint64_t chaos_golden = 0, chaos_typed = 0, chaos_wrong = 0;
  double chaos_wall = 0.0;
  {
    srv::ChaosPlan plan;
    plan.seed = 7;
    plan.stall_ms = 600;
    srv::ChaosProxy proxy(server.port(), plan);
    proxy.start();
    const auto c0 = Clock::now();
    for (int i = 0; i < kChaosQueries; ++i) {
      srv::RetryPolicy policy;
      policy.max_attempts = 3;
      policy.base_backoff_ms = 1;
      policy.max_backoff_ms = 10;
      policy.timeout_ms = 300;
      policy.seed = 7 ^ static_cast<std::uint64_t>(i + 1);
      srv::ResilientClient client(proxy.port(), policy);
      srv::QueryRequest req;
      req.tenant = "chaos";
      req.key = hot[static_cast<std::size_t>(i) % hot.size()];
      try {
        const auto result = client.query(req);
        if (result.ok() &&
            result.reply.digest ==
                golden[static_cast<std::size_t>(i) % golden.size()]) {
          ++chaos_golden;
        } else if (result.ok()) {
          ++chaos_wrong;
        } else {
          ++chaos_typed;  // typed rejection or execution error
        }
      } catch (const srv::RetriesExhaustedError&) {
        ++chaos_typed;
      }
    }
    chaos_wall = std::chrono::duration<double>(Clock::now() - c0).count();
    proxy.stop();
  }
  server.stop();

  std::vector<double> all;
  std::uint64_t ok = 0, rejected = 0, errors = 0;
  for (const auto& run : runs) {
    all.insert(all.end(), run.latency_micros.begin(),
               run.latency_micros.end());
    ok += run.ok;
    rejected += run.rejected;
    errors += run.errors;
  }
  const double qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;

  std::printf("tenants=%d queries_per_tenant=%d workers=%u\n", kTenants,
              kQueriesPerTenant, opts.workers);
  std::printf("ok=%llu rejected=%llu errors=%llu wall_s=%.3f\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(errors), wall);
  std::printf("qps=%.0f  p50_us=%.0f  p99_us=%.0f\n", qps,
              percentile(all, 0.50), percentile(all, 0.99));
  std::printf("%s (target: >= 1000 qps, zero errors)\n",
              qps >= 1000.0 && errors == 0 ? "PASS" : "MISS");
  const double chaos_goodput =
      chaos_wall > 0 ? static_cast<double>(chaos_golden) / chaos_wall : 0.0;
  std::printf(
      "chaos: queries=%d golden=%llu typed=%llu wrong=%llu goodput_qps=%.0f\n",
      kChaosQueries, static_cast<unsigned long long>(chaos_golden),
      static_cast<unsigned long long>(chaos_typed),
      static_cast<unsigned long long>(chaos_wrong), chaos_goodput);
  std::printf("chaos %s (every query golden or typed, some golden)\n",
              chaos_wrong == 0 && chaos_golden > 0 ? "PASS" : "MISS");
  return errors == 0 && chaos_wrong == 0 && chaos_golden > 0 ? 0 : 1;
}
