// Micro-benchmarks for the HyperLogLog sketch: insert/estimate/merge
// throughput and the precision-vs-error curve that justifies the
// DistinctUsers job's default precision.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bloom/hyperloglog.hpp"
#include "common/rng.hpp"

namespace {

using datanet::bloom::HyperLogLog;

void BM_HllInsert(benchmark::State& state) {
  HyperLogLog hll(static_cast<std::uint32_t>(state.range(0)));
  datanet::common::Rng rng(1);
  for (auto _ : state) {
    hll.insert(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllInsert)->Arg(8)->Arg(12)->Arg(16);

void BM_HllEstimate(benchmark::State& state) {
  HyperLogLog hll(static_cast<std::uint32_t>(state.range(0)));
  datanet::common::Rng rng(2);
  for (int i = 0; i < 100000; ++i) hll.insert(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hll.estimate());
  }
}
BENCHMARK(BM_HllEstimate)->Arg(8)->Arg(12)->Arg(16);

void BM_HllMerge(benchmark::State& state) {
  HyperLogLog a(12), b(12);
  datanet::common::Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    a.insert(rng());
    b.insert(rng());
  }
  for (auto _ : state) {
    HyperLogLog c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_HllMerge);

// Error curve: measured relative error vs the 1.04/sqrt(m) theory, reported
// as counters per precision.
void BM_HllErrorCurve(benchmark::State& state) {
  const auto precision = static_cast<std::uint32_t>(state.range(0));
  double rel_err = 0.0;
  constexpr std::uint64_t kTrue = 200000;
  for (auto _ : state) {
    HyperLogLog hll(precision);
    datanet::common::Rng rng(7);
    for (std::uint64_t i = 0; i < kTrue; ++i) hll.insert(rng());
    rel_err = std::fabs(hll.estimate() - static_cast<double>(kTrue)) /
              static_cast<double>(kTrue);
    benchmark::DoNotOptimize(rel_err);
  }
  state.counters["rel_error"] = rel_err;
  state.counters["theory"] =
      1.04 / std::sqrt(static_cast<double>(1u << precision));
  state.counters["bytes"] = static_cast<double>(1u << precision);
}
BENCHMARK(BM_HllErrorCurve)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
