// Ablation: block size. The paper fixes 64 MiB HDFS blocks; block size sets
// the scheduling granularity — smaller blocks mean finer-grained weights
// (easier to balance, more tasks/meta-data), larger blocks concentrate more
// of a sub-dataset into atomic units no scheduler can split. Sweeps the
// scaled block size at constant total data volume.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "elasticmap/elastic_map.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Ablation: block size at constant data volume",
      "smaller blocks = finer balance granularity but more tasks and "
      "meta-data; bigger blocks = atomic hot chunks");

  const std::uint64_t total_bytes = 32ull << 20;  // constant dataset volume
  common::TextTable table({"block size", "blocks", "DataNet max/mean",
                           "locality max/mean", "meta KiB",
                           "meta per raw"});
  for (const std::uint64_t bs :
       {32ull << 10, 64ull << 10, 128ull << 10, 256ull << 10, 512ull << 10}) {
    auto cfg = benchutil::paper_config();
    cfg.block_size = bs;
    const auto ds = core::make_movie_dataset(cfg, total_bytes / bs, 2000);
    const auto& key = ds.hot_keys[0];

    const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    scheduler::DataNetScheduler dn;
    const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);
    scheduler::LocalityScheduler base(7);
    const auto sel_loc =
        benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);

    const auto stat = [](const std::vector<std::uint64_t>& v) {
      std::vector<double> d(v.begin(), v.end());
      return stats::summarize(d);
    };
    table.add_row(
        {common::format_bytes(bs), std::to_string(ds.dfs->num_blocks()),
         common::fmt_double(stat(sel_dn.node_filtered_bytes).max_over_mean(), 2),
         common::fmt_double(stat(sel_loc.node_filtered_bytes).max_over_mean(), 2),
         common::fmt_double(
             static_cast<double>(net.meta().memory_bytes()) / 1024.0, 1),
         common::fmt_percent(static_cast<double>(net.meta().memory_bytes()) /
                                 static_cast<double>(net.meta().raw_bytes()),
                             2)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("balance quality degrades as blocks grow (atomic hot chunks); "
              "meta-data overhead grows as blocks shrink — the paper's 64 MiB "
              "default sits in the usable middle.\n");
  return 0;
}
