// Ablation: replication factor. The paper evaluates on HDFS's default 3-way
// replication; replication also controls how much placement freedom any
// locality-preserving scheduler has (each block may run on r nodes without a
// remote read). This bench sweeps r = 1, 2, 3, 5 and reports the balance
// both schedulers achieve and the remote reads DataNet needs.

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;
  benchutil::print_header(
      "Ablation: replication factor (placement freedom)",
      "higher replication gives locality-preserving schedulers more freedom; "
      "r = 1 forces DataNet to trade remote reads for balance");

  common::TextTable table({"replication", "locality max/mean",
                           "DataNet max/mean", "DataNet cv",
                           "DataNet remote tasks"});
  for (const std::uint32_t repl : {1u, 2u, 3u, 5u}) {
    auto cfg = benchutil::paper_config();
    cfg.replication = repl;
    const auto ds = core::make_movie_dataset(cfg, 192, 2000);
    const auto& key = ds.hot_keys[0];

    scheduler::LocalityScheduler base(7);
    const auto sel_loc =
        benchutil::run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
    const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    scheduler::DataNetScheduler dn;
    const auto sel_dn = benchutil::run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

    const auto stat = [](const std::vector<std::uint64_t>& v) {
      std::vector<double> d(v.begin(), v.end());
      return stats::summarize(d);
    };
    table.add_row(
        {std::to_string(repl),
         common::fmt_double(stat(sel_loc.node_filtered_bytes).max_over_mean(), 2),
         common::fmt_double(stat(sel_dn.node_filtered_bytes).max_over_mean(), 2),
         common::fmt_double(stat(sel_dn.node_filtered_bytes).coeff_variation(), 3),
         std::to_string(sel_dn.assignment.remote_tasks)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("the locality baseline's imbalance is replication-insensitive "
              "(it is content-blind either way); DataNet balances at every r, "
              "paying remote reads only when replicas pin hot blocks "
              "together.\n");
  return 0;
}
