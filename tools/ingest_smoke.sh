#!/usr/bin/env bash
# Streaming-ingestion smoke: run the `datanet ingest` crash drill (see
# src/cli/commands.cpp cmd_ingest) across several seeded kill points. Each
# run streams a generated log through dfs::Ingestor with group commit and a
# live ElasticMap maintainer, copies the journal at the kill instant, recovers
# from checkpoint + journal, audits the open block against its journaled
# length, continues the stream, and exits non-zero unless content, block
# boundaries, and per-key estimates all match a never-crashed reference.
# The script just varies the kill seed (so one lucky crash point can't hide a
# regression) and insists the chi ledger is actually printed — a drill that
# silently skipped the accuracy accounting would otherwise still pass.
#
# Usage: tools/ingest_smoke.sh [build-dir] (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/${1:-build}"
cli="${build_dir}/tools/datanet_cli"

[[ -x "${cli}" ]] || { echo "FAIL: ${cli} not built"; exit 1; }

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for kill_seed in 1 7 42; do
  echo "== ingest drill kill-seed=${kill_seed} =="
  log="${workdir}/drill_${kill_seed}.log"
  timeout 120 "${cli}" ingest --records 12000 --group 64 \
    --kill-seed "${kill_seed}" --workdir "${workdir}/run_${kill_seed}" \
    | tee "${log}" || {
    rc=$?
    if [[ "${rc}" -eq 124 ]]; then
      echo "FAIL: ingest drill HUNG (kill-seed=${kill_seed})"
    else
      echo "FAIL: ingest drill exit=${rc} (kill-seed=${kill_seed})"
    fi
    exit 1
  }
  grep -q "ingestion drill passed" "${log}" || {
    echo "FAIL: no pass line (kill-seed=${kill_seed})"; exit 1;
  }
  grep -q "chi ledger" "${log}" || {
    echo "FAIL: chi ledger not printed (kill-seed=${kill_seed})"; exit 1;
  }
  grep -q "open-block audit" "${log}" || {
    echo "FAIL: open-block audit not printed (kill-seed=${kill_seed})"; exit 1;
  }
done
echo "ingest smoke PASS"
