// datanetd process entry point: the always-on multi-tenant selection daemon.
// Equivalent to `datanet serve` — all logic lives in src/cli and src/server
// (tested); this binary exists so deployments and the CI smoke script have a
// dedicated daemon executable.

#include <iostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> tokens(argv + 1, argv + argc);
  if (!tokens.empty() && (tokens[0] == "--help" || tokens[0] == "help")) {
    std::cout << "datanetd — DataNet selection daemon\n"
              << "usage: datanetd [--port P] [--port-file FILE] [--workers W]\n"
              << "                [--max-queue Q] [--max-inflight I]\n"
              << "                [--max-connections C] [--nodes N]\n"
              << "                [--block-size BYTES] [--replication R]\n"
              << "                [--seed S] [--blocks B]\n"
              << "Stop it with: datanet query --port P --shutdown\n";
    return 0;
  }
  std::string error;
  const auto args = datanet::cli::Args::parse(tokens, &error);
  if (!args) {
    std::cout << "error: " << error << "\n";
    return 1;
  }
  return datanet::cli::cmd_serve(*args, std::cout);
}
