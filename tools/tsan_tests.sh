#!/usr/bin/env bash
# Run the full tier-1 test suite under ThreadSanitizer.
#
# Configures a dedicated build tree (build-tsan/) with
# -DDATANET_SANITIZE=thread, builds everything, and runs ctest. Used to
# verify the parallel MapReduce engine and the SelectionRuntime's
# thread-count-invariance claims: the straggler tests run the same faulted
# selection at 1 and N engine threads, so a data race in the shuffle/reduce
# or attempt bookkeeping shows up here.
#
# Usage: tools/tsan_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDATANET_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes TSan reports fail the test instead of just printing.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
