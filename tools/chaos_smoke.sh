#!/usr/bin/env bash
# Wire-chaos smoke: run the chaos_drill acceptance binary (server + seeded
# ChaosProxy + retrying client; see tools/chaos_drill.cpp) under a hard
# wall-clock bound. The drill's own contract is "every query ends golden,
# degraded-golden, or typed"; the `timeout` wrapper turns "never hangs" from
# a hope into a failing exit code. CI runs this against an ASan build so
# "never crashes" covers lifetime bugs too (the degraded path serves from a
# bundle that must outlive a shard swap).
#
# Usage: tools/chaos_smoke.sh [build-dir] (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/${1:-build}"
drill="${build_dir}/tools/chaos_drill"

[[ -x "${drill}" ]] || { echo "FAIL: ${drill} not built"; exit 1; }

# Three seeds so one lucky fault schedule can't hide a regression. 120s is
# ~10x the worst observed wall clock; hitting it means a hang, not load.
for seed in 1 7 42; do
  echo "== chaos drill seed=${seed} =="
  timeout 120 "${drill}" --queries 45 --seed "${seed}" || {
    rc=$?
    if [[ "${rc}" -eq 124 ]]; then
      echo "FAIL: chaos drill HUNG (seed=${seed})"
    else
      echo "FAIL: chaos drill exit=${rc} (seed=${seed})"
    fi
    exit 1
  }
done
echo "chaos smoke PASS"
