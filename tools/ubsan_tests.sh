#!/usr/bin/env bash
# Run the full tier-1 test suite under UndefinedBehaviorSanitizer.
#
# Configures a dedicated build tree (build-ubsan/) with
# -DDATANET_SANITIZE=undefined, builds everything, and runs ctest. The main
# customers are the recovery/durability deserializers: torn edit-log frames,
# bit-flipped FsImages and MetaStores are fed to the parsers by
# tests/recovery_test.cpp, and UBSan catches the misaligned loads, shift
# overflows, and bad enum casts that hostile bytes can provoke.
#
# Usage: tools/ubsan_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-ubsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDATANET_SANITIZE=undefined
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes UBSan reports fail the test instead of just printing.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
