#!/usr/bin/env bash
# End-to-end smoke of the datanetd serving path over a real loopback socket:
# start the daemon, query a handful of keys through datanet_cli, check every
# served digest against the in-process golden run (`--local` rebuilds the
# same deterministic dataset, so digests must match byte-for-byte), exercise
# a typed rejection, then shut the daemon down over the wire and verify it
# exits cleanly.
#
# Usage: tools/server_smoke.sh [build-dir] (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/${1:-build}"
cli="${build_dir}/tools/datanet_cli"
daemon="${build_dir}/tools/datanetd"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "${daemon_pid}" ]] && kill "${daemon_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

port_file="${workdir}/port"
"${daemon}" --port-file "${port_file}" --workers 2 \
  > "${workdir}/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  [[ -s "${port_file}" ]] && break
  kill -0 "${daemon_pid}" 2>/dev/null || {
    echo "FAIL: daemon died on startup"; cat "${workdir}/daemon.log"; exit 1
  }
  sleep 0.1
done
[[ -s "${port_file}" ]] || { echo "FAIL: no port file"; exit 1; }
port="$(cat "${port_file}")"
echo "datanetd up on port ${port}"

extract() { sed -n "s/.*$1=\([0-9]*\).*/\1/p" <<< "$2"; }

for key in movie_00000 movie_00001 movie_00002; do
  for sched in datanet locality; do
    served="$(timeout 60 "${cli}" query --port "${port}" --tenant smoke --key "${key}" \
      --scheduler "${sched}")"
    golden="$(timeout 60 "${cli}" query --key "${key}" --scheduler "${sched}" --local)"
    sd="$(extract digest "${served}")"
    gd="$(extract digest "${golden}")"
    if [[ -z "${sd}" || "${sd}" != "${gd}" ]]; then
      echo "FAIL: digest mismatch key=${key} sched=${sched}:" \
           "served=${sd:-none} golden=${gd:-none}"
      exit 1
    fi
    echo "OK  ${key} ${sched} digest=${sd}"
  done
done

# A bogus scheduler must come back as a typed rejection (exit 2), not a hang
# or a crash.
rc=0
timeout 60 "${cli}" query --port "${port}" --tenant smoke --key movie_00000 \
  --scheduler no-such-scheduler > "${workdir}/reject.out" 2>&1 || rc=$?
if [[ "${rc}" -ne 2 ]]; then
  echo "FAIL: bogus scheduler exit=${rc}, want 2 (typed rejection)"
  cat "${workdir}/reject.out"; exit 1
fi
echo "OK  typed rejection for unknown scheduler"

timeout 60 "${cli}" query --port "${port}" --shutdown
for _ in $(seq 1 100); do
  kill -0 "${daemon_pid}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${daemon_pid}" 2>/dev/null; then
  echo "FAIL: daemon still running after wire shutdown"; exit 1
fi
daemon_pid=""
echo "OK  wire shutdown"
echo "server smoke PASS"
