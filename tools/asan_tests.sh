#!/usr/bin/env bash
# Run the full tier-1 test suite under AddressSanitizer.
#
# Configures a dedicated build tree (build-asan/) with
# -DDATANET_SANITIZE=address, builds everything, and runs ctest. Used to
# verify that corrupt/truncated meta-data inputs and the fault-injection
# paths are memory-clean (no overflow, no use-after-free, no leak).
#
# Usage: tools/asan_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDATANET_SANITIZE=address
cmake --build "${build_dir}" -j "$(nproc)"

# abort_on_error makes ASan reports fail the test instead of just printing;
# detect_leaks catches allocation-path regressions in the deserializers.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
