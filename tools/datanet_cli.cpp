// The datanet command-line tool: generate synthetic log datasets, inspect a
// log file's sub-dataset distribution (with a Gamma model fit), and run
// DataNet-vs-baseline analyses on the simulated cluster. All logic lives in
// src/cli (tested); this is just the process entry point.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return datanet::cli::run_cli(args, std::cout);
}
