// chaos_drill — the wire-chaos acceptance drill for datanetd (DESIGN.md §8).
//
// Stands up a real Server on loopback, parks a seeded ChaosProxy in front of
// it, and pushes queries through a ResilientClient while the proxy injects
// resets, mid-frame truncations, stalls, and dribbled replies. Midway, the
// drill crashes the metadata shard owning the hosted dataset to force
// degraded-mode serving, then recovers it.
//
// The contract under test: EVERY query ends in exactly one of
//   * a golden reply   — digest equal to the pre-chaos baseline,
//   * a degraded reply — same golden digest, degraded flag set,
//   * a typed error    — kRejected/kError result or RetriesExhaustedError,
// and the drill itself terminates. Never a wrong digest, never a hang,
// never a crash (tools/chaos_smoke.sh runs this under `timeout` and ASan).
//
// Deterministic: the fault schedule is a pure function of --seed (one fresh
// connection per attempt, faults drawn per connection in accept order), and
// retry backoff jitter is seeded from the same value.
//
// Usage: chaos_drill [--queries N] [--seed S] [--verbose]

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "server/chaos_proxy.hpp"
#include "server/client.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"

namespace srv = datanet::server;

namespace {

struct Tally {
  std::uint64_t golden = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t attempts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t timeouts = 0;
  [[nodiscard]] std::uint64_t total() const {
    return golden + degraded + rejected + errors + exhausted;
  }
};

srv::QueryRequest drill_query(const std::string& key) {
  srv::QueryRequest q;
  q.tenant = "chaos";
  q.key = key;
  q.deadline_ms = 5'000;  // generous: exercises the wire field, sheds nothing
  return q;
}

// One query through the proxy on a FRESH ResilientClient (so every attempt
// is a new proxied connection and draws its own fault). Returns false on a
// contract violation (wrong digest); everything else is a counted outcome.
bool run_one(std::uint16_t proxy_port, const srv::RetryPolicy& policy,
             const std::string& key, std::uint64_t golden_digest,
             bool expect_degraded_ok, Tally& tally, bool verbose) {
  srv::ResilientClient client(proxy_port, policy);
  const char* outcome = nullptr;
  bool pass = true;
  try {
    const srv::ClientResult r = client.query(drill_query(key));
    switch (r.status) {
      case srv::ClientResult::Status::kOk:
        if (r.reply.digest != golden_digest) {
          std::fprintf(stderr,
                       "FAIL key=%s digest=%016llx want=%016llx degraded=%d\n",
                       key.c_str(),
                       static_cast<unsigned long long>(r.reply.digest),
                       static_cast<unsigned long long>(golden_digest),
                       static_cast<int>(r.reply.degraded));
          pass = false;
          outcome = "WRONG-DIGEST";
        } else if (r.reply.degraded) {
          // Degraded replies are only acceptable while the drill has the
          // shard down; a degraded reply in a healthy phase would mean the
          // server lies about its own state.
          pass = expect_degraded_ok;
          ++tally.degraded;
          outcome = pass ? "degraded-golden" : "UNEXPECTED-DEGRADED";
        } else {
          ++tally.golden;
          outcome = "golden";
        }
        break;
      case srv::ClientResult::Status::kRejected:
        ++tally.rejected;
        outcome = "typed-rejection";
        break;
      case srv::ClientResult::Status::kError:
        ++tally.errors;
        outcome = "typed-error";
        break;
    }
  } catch (const srv::RetriesExhaustedError& e) {
    ++tally.exhausted;
    outcome = "retries-exhausted";
    if (verbose) std::fprintf(stderr, "  (%s)\n", e.what());
  }
  const auto& rs = client.retry_stats();
  tally.attempts += rs.attempts;
  tally.reconnects += rs.reconnects;
  tally.timeouts += rs.timeouts;
  if (verbose) std::fprintf(stderr, "  key=%s -> %s\n", key.c_str(), outcome);
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t queries = 60;
  std::uint64_t seed = 9;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--queries") {
      queries = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_drill [--queries N] [--seed S] [--verbose]\n");
      return 64;
    }
  }

  srv::ServerOptions opts;
  opts.cfg.num_nodes = 16;
  opts.cfg.block_size = 64 * 1024;
  opts.cfg.seed = 42;
  opts.dataset_blocks = 32;
  opts.workers = 2;
  opts.io_timeout_ms = 2'000;  // slowloris guard: stalled writes get dropped
  srv::Server server(opts);
  // crash/recover drills need per-shard journals (FsImage + EditLog).
  const auto journal_dir =
      std::filesystem::temp_directory_path() /
      ("datanet_chaos_drill_" + std::to_string(::getpid()));
  std::filesystem::remove_all(journal_dir);
  std::filesystem::create_directories(journal_dir);
  server.plane().attach_journals(journal_dir.string());
  server.start();

  srv::ChaosPlan plan;
  plan.seed = seed;
  plan.stall_ms = 1'500;  // longer than the client timeout: stalls MUST trip
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  srv::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 2;
  policy.max_backoff_ms = 20;
  policy.timeout_ms = 500;
  policy.seed = seed;

  // Pin golden digests straight from the server (no proxy, no chaos) — the
  // baseline every chaotic reply is checked against.
  const auto& keys = server.dataset().hot_keys;
  std::vector<std::uint64_t> golden(keys.size());
  {
    srv::Client direct(server.port(), 5'000);
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const auto r = direct.query(drill_query(keys[k]));
      if (!r.ok()) {
        std::fprintf(stderr, "FAIL: baseline query failed: %s\n",
                     r.error.c_str());
        return 1;
      }
      golden[k] = r.reply.digest;
    }
  }

  // Three phases: healthy chaos, shard-down chaos (degraded allowed), and
  // recovered chaos (degraded forbidden again).
  const std::uint64_t down_from = queries / 3;
  const std::uint64_t up_from = (2 * queries) / 3;
  const std::uint32_t shard = server.plane().shard_of(server.dataset().path);
  Tally tally;
  bool pass = true;
  for (std::uint64_t i = 0; i < queries; ++i) {
    if (i == down_from) {
      std::fprintf(stderr, "-- crashing metadata shard %u --\n", shard);
      server.plane().crash_shard(shard);
    }
    if (i == up_from) {
      std::fprintf(stderr, "-- recovering metadata shard %u --\n", shard);
      (void)server.plane().recover_shard(shard);
    }
    const bool shard_down = i >= down_from && i < up_from;
    srv::RetryPolicy p = policy;
    p.seed = seed ^ (i + 1);  // distinct jitter stream per query
    pass &= run_one(proxy.port(), p, keys[i % keys.size()],
                    golden[i % keys.size()], shard_down, tally, verbose);
  }

  const auto ps = proxy.stats();
  proxy.stop();
  server.stop();
  std::filesystem::remove_all(journal_dir);

  std::printf(
      "chaos_drill queries=%llu golden=%llu degraded=%llu rejected=%llu "
      "errors=%llu exhausted=%llu\n",
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(tally.golden),
      static_cast<unsigned long long>(tally.degraded),
      static_cast<unsigned long long>(tally.rejected),
      static_cast<unsigned long long>(tally.errors),
      static_cast<unsigned long long>(tally.exhausted));
  std::printf(
      "transport attempts=%llu reconnects=%llu timeouts=%llu | proxy "
      "connections=%llu clean=%llu reset=%llu truncate=%llu stall=%llu "
      "split=%llu\n",
      static_cast<unsigned long long>(tally.attempts),
      static_cast<unsigned long long>(tally.reconnects),
      static_cast<unsigned long long>(tally.timeouts),
      static_cast<unsigned long long>(ps.connections),
      static_cast<unsigned long long>(ps.clean),
      static_cast<unsigned long long>(ps.resets),
      static_cast<unsigned long long>(ps.truncations),
      static_cast<unsigned long long>(ps.stalls),
      static_cast<unsigned long long>(ps.splits));

  if (tally.total() != queries) {
    std::fprintf(stderr, "FAIL: %llu outcomes for %llu queries\n",
                 static_cast<unsigned long long>(tally.total()),
                 static_cast<unsigned long long>(queries));
    return 1;
  }
  if (tally.golden == 0) {
    std::fprintf(stderr, "FAIL: no query ever reached a golden reply\n");
    return 1;
  }
  if (!pass) {
    std::fprintf(stderr, "chaos drill FAIL\n");
    return 1;
  }
  std::printf("chaos drill PASS\n");
  return 0;
}
