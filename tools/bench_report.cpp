// Machine-readable benchmark report for CI and PR review: runs the Fig. 5
// (movie, 256 blocks) selection under both schedulers through the
// SelectionRuntime, the Fig. 7 shuffle comparison over the same filtered
// data, a straggler-tail experiment (stalled nodes + transient read errors,
// timeout-only recovery vs speculation), and an MTTR experiment (node kills
// healed by the background ReplicationMonitor at a sweep of repair rates),
// a hot-path section (scan-kernel throughput, armed-vs-unarmed bookkeeping
// cost, engine thread sweep — PR 6's optimizations, see bench_hotpath),
// and emits one JSON document with measured selection wall time (host clock)
// a server section (datanetd loopback qps + latency percentiles with served
// digests checked against golden in-process runs — PR 7, see bench_server),
// a metadata section (ring lookup throughput, shard balance and
// kill-one-shard recovery wall over a 1/4/16 shard sweep, client lease-cache
// hit rate — PR 8's sharded metadata plane), a resilience section (serving
// through a seeded ChaosProxy via the retrying client across a
// crash/degrade/recover cycle — PR 9, see chaos_drill), an ingest section
// (journaled group-commit append throughput, delta-apply vs full-rebuild
// map maintenance wall, and the chi-drift-vs-maintenance-interval curve —
// PR 10's streaming ingestion), plus the deterministic simulated report
// totals. Redirect to BENCH_PR10.json via tools/bench_report.sh.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <atomic>
#include <filesystem>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "common/simd_scan.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/edit_log.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/fsck.hpp"
#include "dfs/hash_ring.hpp"
#include "dfs/ingest.hpp"
#include "dfs/meta_client.hpp"
#include "dfs/meta_plane.hpp"
#include "dfs/replication_monitor.hpp"
#include "elasticmap/live_map.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "server/chaos_proxy.hpp"
#include "server/client.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "stats/descriptive.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"
#include "workload/record.hpp"

namespace {

datanet::core::ExperimentConfig paper_config() {
  datanet::core::ExperimentConfig cfg;  // same setup as bench_util.hpp
  cfg.num_nodes = 32;
  cfg.block_size = 128 * 1024;
  cfg.replication = 3;
  cfg.slots_per_node = 2;
  cfg.seed = 2016;
  return cfg;
}

struct TimedSelection {
  datanet::core::SelectionResult result;
  double wall_seconds = 0.0;
};

TimedSelection timed_selection(const datanet::core::StoredDataset& ds,
                               const std::string& key,
                               datanet::scheduler::TaskScheduler& sched,
                               const datanet::core::DataNet* net,
                               const datanet::core::ExperimentConfig& cfg) {
  datanet::core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  datanet::core::NoFaults faults;
  datanet::core::AnalyticBackend timing;
  const datanet::core::SelectionRuntime runtime(read, faults, timing);
  // Best-of-3 wall clock (the run itself is deterministic, so repeats are
  // free of state effects; the min damps shared-host scheduler noise).
  TimedSelection t;
  t.wall_seconds = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    t.result = runtime.run(*ds.dfs, ds.path, key, sched, net, cfg);
    t.wall_seconds = std::min(
        t.wall_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  return t;
}

// Best-of-N wall clock: smooths host scheduler noise better than one shot.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count());
  }
  return best;
}

double max_over_mean(const std::vector<std::uint64_t>& v) {
  std::vector<double> d(v.begin(), v.end());
  return datanet::stats::summarize(d).max_over_mean();
}

void emit_selection(const char* name, const TimedSelection& t, bool last) {
  std::printf(
      "    \"%s\": {\n"
      "      \"selection_wall_seconds\": %.6f,\n"
      "      \"selection_sim_total_seconds\": %.6f,\n"
      "      \"map_phase_seconds\": %.6f,\n"
      "      \"input_bytes\": %llu,\n"
      "      \"filtered_max_over_mean\": %.4f,\n"
      "      \"local_tasks\": %llu,\n"
      "      \"remote_tasks\": %llu,\n"
      "      \"blocks_scanned\": %llu\n"
      "    }%s\n",
      name, t.wall_seconds, t.result.report.total_seconds,
      t.result.report.map_phase_seconds,
      static_cast<unsigned long long>(t.result.report.input_bytes),
      max_over_mean(t.result.node_filtered_bytes),
      static_cast<unsigned long long>(t.result.assignment.local_tasks),
      static_cast<unsigned long long>(t.result.assignment.remote_tasks),
      static_cast<unsigned long long>(t.result.blocks_scanned),
      last ? "" : ",");
}

}  // namespace

int main() {
  using namespace datanet;
  const auto cfg = paper_config();
  auto ds = core::make_movie_dataset(cfg, 256, 2000);
  const std::string key = ds.hot_keys[0];
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  scheduler::LocalityScheduler base(7);
  const auto loc = timed_selection(ds, key, base, nullptr, cfg);
  scheduler::DataNetScheduler dn;
  const auto with = timed_selection(ds, key, dn, &net, cfg);

  std::printf("{\n");
  std::printf(
      "  \"config\": {\"num_nodes\": %u, \"block_size\": %llu, "
      "\"replication\": %u, \"slots_per_node\": %u, \"seed\": %llu},\n",
      cfg.num_nodes, static_cast<unsigned long long>(cfg.block_size),
      cfg.replication, cfg.slots_per_node,
      static_cast<unsigned long long>(cfg.seed));
  std::printf("  \"fig5_movie_selection\": {\n");
  emit_selection("locality", loc, false);
  emit_selection("datanet", with, true);
  std::printf("  },\n");

  // Fig. 7: shuffle-phase means over the two selections' filtered data.
  std::printf("  \"fig7_shuffle\": {\n");
  const auto shuffle = [&](const char* name, const mapred::Job& job,
                           bool last) {
    const auto without = core::run_analysis(job, loc.result, cfg);
    const auto withdn = core::run_analysis(job, with.result, cfg);
    const auto swo = stats::summarize(without.shuffle_task_seconds);
    const auto swi = stats::summarize(withdn.shuffle_task_seconds);
    std::printf(
        "    \"%s\": {\"without_mean_seconds\": %.6f, "
        "\"with_mean_seconds\": %.6f, \"speedup\": %.4f}%s\n",
        name, swo.mean, swi.mean, swo.mean / swi.mean, last ? "" : ",");
  };
  shuffle("WordCount", apps::make_word_count_job(), false);
  shuffle("TopKSearch", apps::make_topk_search_job("a stunning film", 10),
          true);
  std::printf("  },\n");

  // Straggler tail: two nodes stall immediately and two blocks throw
  // transient read errors. Stalls and transients never touch DFS state, so
  // the runs share the dataset; each gets a fresh injector. Everything here
  // is simulated-clock deterministic.
  const auto straggler = [&](bool speculative) {
    const auto blocks = ds.dfs->blocks_of(ds.path);
    std::vector<dfs::FaultEvent> plan;
    plan.push_back(
        {.at_task = 0, .kind = dfs::FaultKind::kStallNode, .node = 1});
    plan.push_back(
        {.at_task = 0, .kind = dfs::FaultKind::kStallNode, .node = 2});
    // Armed before any read, on mid-file blocks the hot key is dense in.
    plan.push_back({.at_task = 0,
                    .kind = dfs::FaultKind::kTransientReadError,
                    .block = blocks[blocks.size() / 2],
                    .fail_count = 2});
    plan.push_back({.at_task = 0,
                    .kind = dfs::FaultKind::kTransientReadError,
                    .block = blocks[blocks.size() / 2 + 1],
                    .fail_count = 2});
    dfs::FaultInjector injector(*ds.dfs, std::move(plan));
    core::AttemptOptions aopt;
    aopt.speculative = speculative;
    // With the short default deadline, timeouts always beat the drain point
    // and speculation never gets a turn; the speculative configuration uses
    // a patient deadline so the duplicates race the stall instead.
    if (speculative) aopt.timeout_ticks = 1000;
    core::ChecksumRetryReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    core::InjectedFaults faults(injector);
    core::AnalyticBackend timing;
    scheduler::DataNetScheduler sched;
    return core::SelectionRuntime(read, faults, timing, aopt)
        .run(*ds.dfs, ds.path, key, sched, &net, cfg);
  };
  const auto emit_attempts = [](const char* name,
                                const core::SelectionResult& r, bool last) {
    const auto& a = r.report.attempts;
    std::printf(
        "    \"%s\": {\n"
        "      \"total_seconds\": %.6f,\n"
        "      \"attempts\": %llu,\n"
        "      \"timeouts\": %llu,\n"
        "      \"transient_retries\": %llu,\n"
        "      \"redispatches\": %llu,\n"
        "      \"speculative_launched\": %llu,\n"
        "      \"speculative_wins\": %llu,\n"
        "      \"degraded_tasks\": %llu\n"
        "    }%s\n",
        name, r.report.total_seconds,
        static_cast<unsigned long long>(a.attempts),
        static_cast<unsigned long long>(a.timeouts),
        static_cast<unsigned long long>(a.transient_retries),
        static_cast<unsigned long long>(a.redispatches),
        static_cast<unsigned long long>(a.speculative_launched),
        static_cast<unsigned long long>(a.speculative_wins),
        static_cast<unsigned long long>(a.degraded_tasks), last ? "" : ",");
  };
  const auto tail_timeout = straggler(/*speculative=*/false);
  const auto tail_spec = straggler(/*speculative=*/true);
  std::printf("  \"straggler_tail\": {\n");
  std::printf("    \"clean_total_seconds\": %.6f,\n",
              with.result.report.total_seconds);
  emit_attempts("timeout_only", tail_timeout, false);
  emit_attempts("speculation", tail_spec, true);
  std::printf("  },\n");

  // MTTR: kill 4 of 32 nodes on a deferred-repair cluster, then let the
  // background ReplicationMonitor drain the backlog at increasing repair
  // rates. The damage is identical per rate (same dataset seed, same kills),
  // so ticks-to-heal and the summed/mean MTTR isolate the rate limit.
  std::printf("  \"mttr_by_repair_rate\": {\n");
  const std::uint32_t rates[] = {1, 2, 4, 8, 16};
  for (std::size_t i = 0; i < std::size(rates); ++i) {
    auto mcfg = paper_config();
    mcfg.inline_repair = false;
    auto mds = core::make_movie_dataset(mcfg, 64, 2000);
    for (const dfs::NodeId n : {3u, 11u, 19u, 27u}) {
      (void)mds.dfs->decommission(n);
    }
    const auto damaged = dfs::fsck(*mds.dfs).under_replicated;
    dfs::ReplicationMonitor monitor(*mds.dfs,
                                    {.max_repairs_per_tick = rates[i]});
    const auto ticks = monitor.drain();
    const auto& ms = monitor.stats();
    const bool clean = dfs::fsck(*mds.dfs).healthy();
    std::printf(
        "    \"rate_%u\": {\"under_replicated\": %llu, "
        "\"ticks_to_heal\": %llu, \"healed_blocks\": %llu, "
        "\"repairs\": %llu, \"mttr_ticks\": %llu, "
        "\"mean_mttr_ticks\": %.4f, \"fsck_clean\": %s}%s\n",
        rates[i], static_cast<unsigned long long>(damaged),
        static_cast<unsigned long long>(ticks),
        static_cast<unsigned long long>(ms.healed_blocks),
        static_cast<unsigned long long>(ms.repairs),
        static_cast<unsigned long long>(ms.mttr_ticks),
        ms.healed_blocks == 0
            ? 0.0
            : static_cast<double>(ms.mttr_ticks) /
                  static_cast<double>(ms.healed_blocks),
        clean ? "true" : "false", i + 1 == std::size(rates) ? "" : ",");
  }
  std::printf("  },\n");

  // Hot path (PR 6): scan-kernel throughput over the movie corpus, the
  // armed-vs-unarmed bookkeeping delta on a clean selection (with a report
  // byte-equality check), and the engine thread sweep. Wall-clock values;
  // `reports_identical` is the only deterministic field.
  std::printf("  \"hotpath\": {\n");
  const auto& blocks = ds.dfs->blocks_of(ds.path);
  std::uint64_t corpus_bytes = 0;
  for (const dfs::BlockId b : blocks) {
    corpus_bytes += ds.dfs->read_block(b).size();
  }
  const double corpus_mib = static_cast<double>(corpus_bytes) / (1 << 20);
  std::printf("    \"active_kernel\": \"%s\",\n",
              common::scan_kernel_name(common::active_scan_kernel()));
  std::printf("    \"filter_mib_per_s\": {");
  const common::ScanKernel kernels[] = {common::ScanKernel::kScalar,
                                        common::ScanKernel::kSse2,
                                        common::ScanKernel::kAvx2};
  bool first = true;
  for (const auto kernel : kernels) {
    if (!common::scan_kernel_available(kernel)) continue;
    const double secs = best_of(5, [&] {
      std::string out;
      for (const dfs::BlockId b : blocks) {
        out.clear();
        (void)core::filter_lines(ds.dfs->read_block(b), key, out, kernel);
      }
    });
    std::printf("%s\"%s\": %.1f", first ? "" : ", ",
                common::scan_kernel_name(kernel), corpus_mib / secs);
    first = false;
  }
  std::printf("},\n");
  scheduler::DataNetScheduler hp_sched;
  core::SelectionResult unarmed_result;
  const double unarmed_secs = best_of(3, [&] {
    core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    core::NoFaults faults;
    core::AnalyticBackend timing;
    unarmed_result = core::SelectionRuntime(read, faults, timing)
                         .run(*ds.dfs, ds.path, key, hp_sched, &net, cfg);
  });
  core::SelectionResult armed_result;
  const double armed_secs = best_of(3, [&] {
    dfs::FaultInjector injector(*ds.dfs, {});  // empty plan, still armed
    core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
    core::InjectedFaults faults(injector);
    core::AnalyticBackend timing;
    armed_result = core::SelectionRuntime(read, faults, timing)
                       .run(*ds.dfs, ds.path, key, hp_sched, &net, cfg);
  });
  const bool identical =
      mapred::report_to_json(unarmed_result.report, true) ==
          mapred::report_to_json(armed_result.report, true) &&
      unarmed_result.node_local_data == armed_result.node_local_data;
  std::printf("    \"armed_wall_seconds\": %.6f,\n", armed_secs);
  std::printf("    \"unarmed_wall_seconds\": %.6f,\n", unarmed_secs);
  std::printf("    \"reports_identical\": %s,\n", identical ? "true" : "false");
  std::printf("    \"thread_sweep_wall_seconds\": {");
  first = true;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto tcfg = cfg;
    tcfg.execution_threads = threads;
    const double secs = best_of(3, [&] {
      core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
      core::NoFaults faults;
      core::AnalyticBackend timing;
      (void)core::SelectionRuntime(read, faults, timing)
          .run(*ds.dfs, ds.path, key, hp_sched, &net, tcfg);
    });
    std::printf("%s\"%u\": %.6f", first ? "" : ", ", threads, secs);
    first = false;
  }
  std::printf("}\n");
  std::printf("  },\n");

  // Server (PR 7): the datanetd loopback serving path — qps and
  // client-observed latency percentiles with every served digest checked
  // against the in-process golden run (see bench_server for the
  // human-readable twin). Wall-clock values; digests_verified is the
  // deterministic field.
  std::printf("  \"server\": {\n");
  {
    server::ServerOptions sopts;
    sopts.workers = 4;
    sopts.default_limits = {.max_queue = 256, .max_inflight = 16, .weight = 1};
    sopts.cfg.num_nodes = 16;
    sopts.cfg.block_size = 64 * 1024;
    sopts.cfg.replication = 3;
    sopts.cfg.seed = 42;
    sopts.dataset_blocks = 32;
    server::Server srv(sopts);
    srv.start();
    const auto& hot = srv.dataset().hot_keys;
    std::vector<std::uint64_t> golden;
    for (const auto& hkey : hot) {
      server::QueryRequest req;
      req.tenant = "golden";
      req.key = hkey;
      const auto out = server::local_query(sopts, req);
      golden.push_back(out.ok ? out.reply.digest : 0);
    }
    constexpr int kTenants = 4;
    constexpr int kPerTenant = 200;
    std::vector<std::vector<double>> lat(kTenants);
    std::atomic<std::uint64_t> ok{0}, mismatched{0};
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> tenants;
      for (int t = 0; t < kTenants; ++t) {
        tenants.emplace_back([&, t] {
          server::Client client(srv.port());
          for (int q = 0; q < kPerTenant; ++q) {
            const std::size_t ki = q % 5 == 0 ? (q / 5) % hot.size() : 0;
            server::QueryRequest req;
            req.tenant = "tenant_" + std::to_string(t);
            req.key = hot[ki];
            const auto q0 = std::chrono::steady_clock::now();
            const auto result = client.query(req);
            lat[t].push_back(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - q0)
                                 .count());
            if (result.ok() && result.reply.digest == golden[ki]) {
              ok.fetch_add(1, std::memory_order_relaxed);
            } else {
              mismatched.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& t : tenants) t.join();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    srv.stop();
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const auto pct = [&](double p) {
      return all.empty()
                 ? 0.0
                 : all[static_cast<std::size_t>(p * (all.size() - 1))];
    };
    std::printf("    \"tenants\": %d,\n", kTenants);
    std::printf("    \"queries\": %d,\n", kTenants * kPerTenant);
    std::printf("    \"qps\": %.0f,\n",
                wall > 0 ? static_cast<double>(ok.load()) / wall : 0.0);
    std::printf("    \"p50_micros\": %.0f,\n", pct(0.50));
    std::printf("    \"p99_micros\": %.0f,\n", pct(0.99));
    std::printf("    \"digests_verified\": %s\n",
                mismatched.load() == 0 ? "true" : "false");
  }
  std::printf("  },\n");

  // Metadata plane (PR 8): pure ring routing throughput, a 1/4/16 shard
  // sweep (per-shard block balance, kill-one-shard recovery wall time), the
  // client lease-cache hit rate, and placement_identical — the deterministic
  // field: the same file must get byte-identical placement at every shard
  // count (the digest contract behind serve --meta-shards).
  std::printf("  \"metadata\": {\n");
  {
    dfs::DfsOptions dopt;
    dopt.block_size = 16 * 1024;
    dopt.replication = 3;
    dopt.seed = 42;

    const dfs::HashRing ring16(16);
    std::uint64_t sink = 0;
    constexpr std::uint64_t kLookups = 2'000'000;
    const double ring_secs = best_of(3, [&] {
      for (std::uint64_t i = 0; i < kLookups; ++i) {
        sink += ring16.shard_of_block(i);
      }
    });
    static volatile std::uint64_t guard;
    guard = sink;
    (void)guard;
    std::printf("    \"ring_lookups_per_sec\": %.0f,\n",
                ring_secs > 0 ? static_cast<double>(kLookups) / ring_secs
                              : 0.0);

    const auto bench_dir =
        std::filesystem::temp_directory_path() / "datanet_bench_meta";
    constexpr std::uint32_t kFiles = 64;
    const auto write_bench_file = [](dfs::MetaPlane& plane,
                                     const std::string& path) {
      auto w = plane.create(path);
      for (int r = 0; r < 24; ++r) {
        w.append("bench-record-" + std::to_string(r) + "-payload-xxxxxxxx");
      }
      w.close();
    };

    std::vector<dfs::NodeId> placement1;  // first block of /bench/f0 at S=1
    bool identical = true;
    std::printf("    \"shard_sweep\": {\n");
    const std::uint32_t sweep[] = {1, 4, 16};
    for (std::size_t si = 0; si < 3; ++si) {
      dfs::MetaPlaneOptions popt;
      popt.num_shards = sweep[si];
      popt.dfs = dopt;
      dfs::MetaPlane plane(dfs::ClusterTopology::flat(16), popt);
      for (std::uint32_t f = 0; f < kFiles; ++f) {
        write_bench_file(plane, "/bench/f" + std::to_string(f));
      }
      const auto& first = plane.dfs_for("/bench/f0");
      const auto probe =
          first.replicas_snapshot(first.blocks_of("/bench/f0").front());
      if (si == 0) {
        placement1 = probe;
      } else if (probe != placement1) {
        identical = false;
      }

      std::vector<std::uint64_t> blocks;
      for (std::uint32_t s = 0; s < plane.num_shards(); ++s) {
        blocks.push_back(plane.dfs(s).num_blocks());
      }

      std::filesystem::remove_all(bench_dir);
      std::filesystem::create_directories(bench_dir);
      plane.attach_journals(bench_dir.string());
      write_bench_file(plane, "/bench/late");  // journal suffix to replay
      const std::uint32_t victim = plane.shard_of("/bench/late");
      const auto t0 = std::chrono::steady_clock::now();
      plane.crash_shard(victim);
      (void)plane.recover_shard(victim);
      const double recover_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      std::printf(
          "      \"%u\": {\"files\": %u, \"blocks_max_over_mean\": %.4f, "
          "\"recover_one_shard_ms\": %.3f}%s\n",
          sweep[si], kFiles + 1, max_over_mean(blocks), recover_ms,
          si + 1 < 3 ? "," : "");
    }
    std::printf("    },\n");
    std::filesystem::remove_all(bench_dir);
    std::printf("    \"placement_identical\": %s,\n",
                identical ? "true" : "false");

    // Lease hit rate: 16 hot files over a 4-shard plane, one access per file
    // per tick, 16-tick leases — the steady-state mix of lease hits vs
    // renewals vs refetches a long-lived client sees.
    dfs::MetaPlaneOptions popt;
    popt.num_shards = 4;
    popt.dfs = dopt;
    dfs::MetaPlane plane(dfs::ClusterTopology::flat(16), popt);
    std::vector<std::string> hot;
    for (std::uint32_t f = 0; f < 16; ++f) {
      hot.push_back("/bench/f" + std::to_string(f));
      write_bench_file(plane, hot.back());
    }
    dfs::ClientMetaCache cache(plane, {.lease_ticks = 16});
    for (int t = 0; t < 512; ++t) {
      for (const auto& path : hot) (void)cache.blocks_of(path);
      cache.tick();
    }
    const auto& cs = cache.stats();
    const double accesses =
        static_cast<double>(cs.lease_hits + cs.renewals + cs.refetches);
    std::printf("    \"lease_accesses\": %.0f,\n", accesses);
    std::printf("    \"lease_hit_rate\": %.4f\n",
                accesses > 0 ? static_cast<double>(cs.lease_hits) / accesses
                             : 0.0);
  }
  std::printf("  },\n");

  // Resilience (PR 9): the serving path behind a seeded ChaosProxy, queried
  // through the retrying client, with the owning metadata shard crashed for
  // the middle third (degraded serving) and recovered for the final third.
  // all_accounted / any_wrong are the contract fields: every query must end
  // golden, degraded-golden, or typed — goodput_qps is the wall-dependent
  // extra.
  std::printf("  \"resilience\": {\n");
  {
    server::ServerOptions sopts;
    sopts.workers = 2;
    sopts.cfg.num_nodes = 16;
    sopts.cfg.block_size = 64 * 1024;
    sopts.cfg.seed = 42;
    sopts.dataset_blocks = 32;
    sopts.io_timeout_ms = 2'000;
    server::Server srv(sopts);
    const auto journal_dir =
        std::filesystem::temp_directory_path() / "datanet_bench_resilience";
    std::filesystem::remove_all(journal_dir);
    std::filesystem::create_directories(journal_dir);
    srv.plane().attach_journals(journal_dir.string());
    srv.start();

    const auto& hot = srv.dataset().hot_keys;
    std::vector<std::uint64_t> golden;
    {
      server::Client direct(srv.port(), 5'000);
      for (const auto& hkey : hot) {
        server::QueryRequest req;
        req.tenant = "chaos";
        req.key = hkey;
        golden.push_back(direct.query(req).reply.digest);
      }
    }

    server::ChaosPlan plan;
    plan.seed = 7;
    plan.stall_ms = 900;
    server::ChaosProxy proxy(srv.port(), plan);
    proxy.start();

    constexpr std::uint64_t kQueries = 45;
    const std::uint32_t shard = srv.plane().shard_of(srv.dataset().path);
    std::uint64_t n_golden = 0, n_degraded = 0, n_typed = 0, n_wrong = 0;
    const auto c0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kQueries; ++i) {
      if (i == kQueries / 3) srv.plane().crash_shard(shard);
      if (i == 2 * kQueries / 3) (void)srv.plane().recover_shard(shard);
      server::RetryPolicy policy;
      policy.max_attempts = 3;
      policy.base_backoff_ms = 1;
      policy.max_backoff_ms = 10;
      policy.timeout_ms = 300;
      policy.seed = 7 ^ (i + 1);
      server::ResilientClient client(proxy.port(), policy);
      server::QueryRequest req;
      req.tenant = "chaos";
      req.key = hot[i % hot.size()];
      try {
        const auto result = client.query(req);
        if (result.ok() && result.reply.digest == golden[i % golden.size()]) {
          ++(result.reply.degraded ? n_degraded : n_golden);
        } else if (result.ok()) {
          ++n_wrong;
        } else {
          ++n_typed;
        }
      } catch (const server::RetriesExhaustedError&) {
        ++n_typed;
      }
    }
    const double cwall = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - c0)
                             .count();
    proxy.stop();
    srv.stop();
    std::filesystem::remove_all(journal_dir);

    std::printf("    \"queries\": %llu,\n",
                static_cast<unsigned long long>(kQueries));
    std::printf("    \"golden\": %llu,\n",
                static_cast<unsigned long long>(n_golden));
    std::printf("    \"degraded_golden\": %llu,\n",
                static_cast<unsigned long long>(n_degraded));
    std::printf("    \"typed_errors\": %llu,\n",
                static_cast<unsigned long long>(n_typed));
    std::printf("    \"all_accounted\": %s,\n",
                n_golden + n_degraded + n_typed + n_wrong == kQueries
                    ? "true"
                    : "false");
    std::printf("    \"any_wrong\": %s,\n", n_wrong == 0 ? "false" : "true");
    std::printf("    \"goodput_qps\": %.0f\n",
                cwall > 0
                    ? static_cast<double>(n_golden + n_degraded) / cwall
                    : 0.0);
  }
  std::printf("  },\n");

  // Streaming ingestion (PR 10): journaled group-commit append throughput,
  // the wall-clock case for delta-applying sealed blocks into the ElasticMap
  // instead of rebuilding it, and the chi-drift bound as a function of how
  // often the maintainer drains (EXPERIMENTS.md's drift-vs-interval curve).
  // delta_matches_rebuild is the deterministic contract field: the
  // incrementally maintained map must answer exactly like a fresh build.
  std::printf("  \"ingest\": {\n");
  {
    workload::MovieGenOptions gopt;
    gopt.num_records = 40'000;
    gopt.num_movies = 24;
    gopt.seed = 2016;
    std::vector<std::string> lines;
    std::uint64_t stream_bytes = 0;
    for (const auto& r : workload::MovieLogGenerator(gopt).generate()) {
      lines.push_back(workload::encode_record(r));
      stream_bytes += lines.back().size() + 1;
    }
    dfs::DfsOptions dopt;
    dopt.block_size = 16 * 1024;
    dopt.replication = 3;
    dopt.seed = 42;
    const std::string path = "/bench/stream.log";
    const auto bench_dir =
        std::filesystem::temp_directory_path() / "datanet_bench_ingest";
    std::filesystem::remove_all(bench_dir);
    std::filesystem::create_directories(bench_dir);

    // Append throughput through the full durable path: every group commit is
    // one framed-and-flushed journal record. Fresh cluster per rep.
    const double append_secs = best_of(3, [&] {
      dfs::MiniDfs mini(dfs::ClusterTopology::flat(16), dopt);
      dfs::EditLog journal((bench_dir / "ingest.edits").string());
      mini.attach_edit_log(&journal);
      dfs::Ingestor ing(mini, path, {.group_records = 64});
      for (const auto& line : lines) ing.append(line);
    });
    std::printf("    \"records\": %zu,\n", lines.size());
    std::printf("    \"append_records_per_sec\": %.0f,\n",
                append_secs > 0
                    ? static_cast<double>(lines.size()) / append_secs
                    : 0.0);
    std::printf("    \"append_mib_per_sec\": %.1f,\n",
                append_secs > 0 ? static_cast<double>(stream_bytes) /
                                      (1 << 20) / append_secs
                                : 0.0);

    // Delta-apply vs full rebuild: cover the first half, stream the second,
    // then time catching the map up by deltas vs rebuilding it from scratch.
    // One shot each (the maintainer state is consumed by the drain).
    dfs::MiniDfs mini(dfs::ClusterTopology::flat(16), dopt);
    {
      dfs::Ingestor ing(mini, path, {.group_records = 64});
      for (std::size_t i = 0; i < lines.size() / 2; ++i) ing.append(lines[i]);
    }
    elasticmap::LiveMapMaintainer maint(mini, path, {});
    {
      dfs::Ingestor ing(mini, path, {.group_records = 64});
      for (std::size_t i = lines.size() / 2; i < lines.size(); ++i) {
        ing.append(lines[i]);
      }
    }
    const auto d0 = std::chrono::steady_clock::now();
    (void)maint.drain();
    const double delta_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - d0)
                                .count();
    const double rebuild_ms = 1e3 * best_of(3, [&] {
      (void)elasticmap::ElasticMapArray::build(mini, path, {});
    });
    const auto fresh = elasticmap::ElasticMapArray::build(mini, path, {});
    bool matches = true;
    const workload::GroundTruth truth(mini, path);
    for (const auto id : truth.ids_by_size()) {
      matches &= maint.map().estimate_total_size(id) ==
                 fresh.estimate_total_size(id);
    }
    std::printf("    \"blocks\": %llu,\n",
                static_cast<unsigned long long>(
                    mini.blocks_of(path).size()));
    std::printf("    \"delta_catchup_half_ms\": %.3f,\n", delta_ms);
    std::printf("    \"full_rebuild_ms\": %.3f,\n", rebuild_ms);
    std::printf("    \"delta_matches_rebuild\": %s,\n",
                matches ? "true" : "false");

    // Chi-drift curve: prime the map over the first eighth of the stream
    // (a cold map is 100% stale by definition — not the interesting regime),
    // then stream the rest draining the maintainer every `interval` sealed
    // blocks, recording the worst drift bound seen right before a drain.
    // Deterministic (no wall clock involved).
    std::printf("    \"peak_chi_drift_by_drain_interval\": {");
    bool first_iv = true;
    for (const std::uint64_t interval : {1u, 2u, 4u, 8u, 16u}) {
      dfs::MiniDfs m2(dfs::ClusterTopology::flat(16), dopt);
      const std::size_t warmup = lines.size() / 8;
      {
        dfs::Ingestor warm(m2, path, {.group_records = 64});
        for (std::size_t i = 0; i < warmup; ++i) warm.append(lines[i]);
      }
      elasticmap::LiveMapMaintainer m2m(m2, path, {});
      double peak = 0.0;
      std::uint64_t seals = 0;
      dfs::Ingestor ing(m2, path, {.group_records = 64});
      ing.on_seal = [&](dfs::BlockId) {
        (void)m2m.scan();
        peak = std::max(peak, m2m.ledger().estimated_chi_drift);
        if (++seals % interval == 0) (void)m2m.drain();
      };
      for (std::size_t i = warmup; i < lines.size(); ++i) ing.append(lines[i]);
      std::printf("%s\"%llu\": %.4f", first_iv ? "" : ", ",
                  static_cast<unsigned long long>(interval), peak);
      first_iv = false;
    }
    std::printf("}\n");
    std::filesystem::remove_all(bench_dir);
  }
  std::printf("  }\n}\n");
  return 0;
}
