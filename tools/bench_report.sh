#!/usr/bin/env bash
# Build and run the machine-readable benchmark report, writing BENCH_PR10.json
# at the repo root: Fig. 5 selection wall time + simulated report totals for
# both schedulers, the Fig. 7 shuffle speedups, the straggler-tail
# attempt/timeout/speculation numbers, and the ReplicationMonitor MTTR sweep
# over repair rates, the PR 6 hot-path section (scan-kernel throughput,
# armed-vs-unarmed bookkeeping delta, engine thread sweep), the PR 7
# server section (datanetd loopback qps + latency percentiles, digests
# checked against golden in-process runs), and the PR 8 metadata section
# (ring lookup throughput, shard balance + kill-one-shard recovery over a
# 1/4/16 shard sweep, placement determinism, client lease-cache hit rate),
# and the PR 9 resilience section (chaos-proxied serving through the
# retrying client across a crash/degrade/recover cycle: outcome split and
# goodput, with the golden/degraded/typed contract checked), and the PR 10
# ingest section (journaled group-commit append throughput, delta-apply vs
# full-rebuild map maintenance, chi-drift vs drain interval).
# Wall times depend on the host; the simulated totals are bit-for-bit
# reproducible.
#
# Usage: tools/bench_report.sh [build-dir] (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/${1:-build}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target bench_report >/dev/null

out="${repo_root}/BENCH_PR10.json"
"${build_dir}/tools/bench_report" > "${out}"
echo "wrote ${out}"
