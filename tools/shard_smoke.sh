#!/usr/bin/env bash
# Smoke of the sharded metadata plane, end to end through datanet_cli:
#
#  1. fsck --meta-shards 4 runs the kill-one-shard drill — spread a dataset
#     across 4 metadata shards with per-shard journals, crash one shard,
#     verify the other three keep serving, recover the victim from its own
#     FsImage + EditLog suffix, digest-check it, and finish with a clean
#     plane-wide fsck (non-zero exit on any failure).
#  2. datanetd --meta-shards 4 serves the hosted dataset off a 4-shard
#     plane; a served digest must still match the in-process golden run
#     (--local, shard count 1) — sharding must never change placement.
#  3. query --stats --json round-trips the per-tenant metering snapshot and
#     must report the 4-shard plane.
#
# Usage: tools/shard_smoke.sh [build-dir] (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/${1:-build}"
cli="${build_dir}/tools/datanet_cli"
daemon="${build_dir}/tools/datanetd"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "${daemon_pid}" ]] && kill "${daemon_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

# ---- 1. kill-one-shard drill ------------------------------------------------
timeout 60 "${cli}" generate --out "${workdir}/shard.log" --records 6000 --seed 4

fsck_out="$(timeout 60 "${cli}" fsck --in "${workdir}/shard.log" --meta-shards 4 \
  --nodes 8 --workdir "${workdir}/plane")"
echo "${fsck_out}"
for want in "4 metadata shards" "other shard(s) still serving" \
            "recovered shard digest matches" "plane fsck:"; do
  if ! grep -q "${want}" <<< "${fsck_out}"; then
    echo "FAIL: fsck --meta-shards output missing '${want}'"; exit 1
  fi
done
echo "OK  kill-one-shard drill (4 shards, recover from image+journal)"

# ---- 2. serving determinism across shard counts -----------------------------
port_file="${workdir}/port"
"${daemon}" --port-file "${port_file}" --workers 2 --meta-shards 4 \
  > "${workdir}/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  [[ -s "${port_file}" ]] && break
  kill -0 "${daemon_pid}" 2>/dev/null || {
    echo "FAIL: daemon died on startup"; cat "${workdir}/daemon.log"; exit 1
  }
  sleep 0.1
done
[[ -s "${port_file}" ]] || { echo "FAIL: no port file"; exit 1; }
port="$(cat "${port_file}")"
echo "datanetd up on port ${port} (4 metadata shards)"

extract() { sed -n "s/.*$1=\([0-9]*\).*/\1/p" <<< "$2"; }

for key in movie_00000 movie_00001; do
  served="$(timeout 60 "${cli}" query --port "${port}" --tenant smoke --key "${key}")"
  golden="$(timeout 60 "${cli}" query --key "${key}" --local)"
  sd="$(extract digest "${served}")"
  gd="$(extract digest "${golden}")"
  if [[ -z "${sd}" || "${sd}" != "${gd}" ]]; then
    echo "FAIL: digest mismatch at 4 shards key=${key}:" \
         "served=${sd:-none} golden=${gd:-none}"
    exit 1
  fi
  echo "OK  ${key} digest=${sd} (4-shard plane == golden)"
done

# ---- 3. per-tenant metering snapshot ----------------------------------------
stats="$(timeout 60 "${cli}" query --port "${port}" --stats --json)"
echo "${stats}"
for want in '"meta_shards": 4' '"tenant": "smoke"' '"queue_wait_micros"'; do
  if ! grep -qF "${want}" <<< "${stats}"; then
    echo "FAIL: stats missing ${want}"; exit 1
  fi
done
echo "OK  stats report 4 shards and tenant metering"

timeout 60 "${cli}" query --port "${port}" --shutdown
for _ in $(seq 1 100); do
  kill -0 "${daemon_pid}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${daemon_pid}" 2>/dev/null; then
  echo "FAIL: daemon still running after wire shutdown"; exit 1
fi
daemon_pid=""
echo "shard smoke PASS"
