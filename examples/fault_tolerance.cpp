// Operating through failures: a cluster loses nodes mid-life, the NameNode
// re-replicates, fsck verifies health, the balancer evens replica placement,
// and sub-dataset analyses keep working with the same meta-data. Exercises
// the fault-handling substrate end-to-end the way an operator would.

#include <cstdio>

#include "apps/word_count.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "dfs/fsck.hpp"
#include "scheduler/datanet_sched.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace datanet;

  core::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 64 * 1024;
  cfg.seed = 13;
  auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/96, /*num_movies=*/600);
  const auto& key = ds.hot_keys[0];

  const auto report_health = [&](const char* label) {
    const auto r = dfs::fsck(*ds.dfs);
    std::printf("%-28s blocks=%llu healthy=%llu under=%llu missing=%llu "
                "balance cv=%.3f\n",
                label, static_cast<unsigned long long>(r.total_blocks),
                static_cast<unsigned long long>(r.healthy_blocks),
                static_cast<unsigned long long>(r.under_replicated),
                static_cast<unsigned long long>(r.missing_blocks),
                r.replica_balance_cv);
    return r;
  };

  report_health("initial:");

  // Build the meta-data before anything goes wrong.
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  scheduler::DataNetScheduler dn0;
  const auto before =
      core::run_end_to_end(*ds.dfs, ds.path, key, dn0, &net,
                           apps::make_word_count_job(), cfg);
  std::printf("analysis before failures: %.1f s, %zu output keys\n\n",
              before.total_seconds(), before.analysis.output.size());

  // Two nodes die. The NameNode re-replicates from surviving copies.
  for (const dfs::NodeId dead : {3u, 11u}) {
    const auto lost = ds.dfs->decommission(dead);
    std::printf("node %u decommissioned (%zu blocks lost)\n", dead, lost.size());
  }
  const auto after_failures = report_health("after failures:");
  if (!after_failures.healthy()) {
    std::printf("cluster unhealthy — aborting\n");
    return 1;
  }

  // Re-replication targets were chosen randomly; the balancer evens out the
  // per-node replica counts like the HDFS balancer would.
  const auto balanced = dfs::balance_replicas(*ds.dfs, /*tolerance=*/1);
  std::printf("balancer moved %llu replicas\n",
              static_cast<unsigned long long>(balanced.moves));
  report_health("after balancing:");

  // The same meta-data still schedules correctly: weights are per-block and
  // placement comes from the (repaired) replica map at scheduling time.
  scheduler::DataNetScheduler dn1;
  const auto after = core::run_end_to_end(*ds.dfs, ds.path, key, dn1, &net,
                                          apps::make_word_count_job(), cfg);
  std::printf("\nanalysis after failures: %.1f s, %zu output keys\n",
              after.total_seconds(), after.analysis.output.size());
  std::printf("output identical to pre-failure run: %s\n",
              after.analysis.output == before.analysis.output ? "yes" : "NO");
  return 0;
}
