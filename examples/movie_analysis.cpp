// Movie log analysis — the paper's primary scenario end-to-end. A
// recommendation-system team keeps a year of chronologically stored review
// logs on the DFS and routinely analyzes individual movies: rating trends
// (MovingAverage), vocabulary (WordCount), and similar-review search (TopK).
//
// This example shows the full production flow a DataNet adopter would run:
// build the meta-data once, then reuse it for many per-movie analyses, and
// inspect where the time goes for hot vs cold movies.

#include <cstdio>

#include "apps/moving_average.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "common/table.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"

int main() {
  using namespace datanet;

  core::ExperimentConfig cfg;
  cfg.num_nodes = 32;
  cfg.block_size = 128 * 1024;
  cfg.seed = 77;
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/128,
                                           /*num_movies=*/1000);

  // Meta-data is built once per dataset and reused by every analysis.
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  std::printf("dataset: %llu blocks, %llu sub-datasets; ElasticMap %.1f KiB\n\n",
              static_cast<unsigned long long>(ds.dfs->num_blocks()),
              static_cast<unsigned long long>(ds.truth->num_subdatasets()),
              static_cast<double>(net.meta().memory_bytes()) / 1024.0);

  // Analyze a hot, a warm and a cold movie with all three jobs.
  const std::vector<std::pair<const char*, std::string>> movies = {
      {"hot", ds.hot_keys[0]}, {"warm", ds.hot_keys[5]}, {"cold", ds.hot_keys[15]}};

  common::TextTable table({"movie", "job", "locality (s)", "DataNet (s)",
                           "gain", "blocks scanned (DataNet)"});
  for (const auto& [label, key] : movies) {
    struct JobRow {
      const char* name;
      mapred::Job job;
    };
    std::vector<JobRow> jobs;
    jobs.push_back({"MovingAverage", apps::make_moving_average_job(86400 * 7)});
    jobs.push_back({"WordCount", apps::make_word_count_job()});
    jobs.push_back({"TopKSearch",
                    apps::make_topk_search_job("best movie i have seen", 5)});
    for (auto& [name, job] : jobs) {
      scheduler::LocalityScheduler base(7);
      const auto without =
          core::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
      scheduler::DataNetScheduler dn;
      const auto with =
          core::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);
      table.add_row(
          {std::string(label) + " (" + key + ")", name,
           common::fmt_double(without.total_seconds(), 1),
           common::fmt_double(with.total_seconds(), 1),
           common::fmt_percent(1.0 -
                               with.total_seconds() / without.total_seconds()),
           std::to_string(with.selection.blocks_scanned) + "/" +
               std::to_string(ds.dfs->num_blocks())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Show real analysis output for the hot movie: the weekly rating trend.
  scheduler::DataNetScheduler dn;
  core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  core::NoFaults faults;
  core::AnalyticBackend timing;
  const auto sel = core::SelectionRuntime(read, faults, timing)
                       .run(*ds.dfs, ds.path, ds.hot_keys[0], dn, &net, cfg);
  const auto trend =
      core::run_analysis(apps::make_moving_average_job(86400 * 7), sel, cfg);
  std::printf("weekly rating trend for %s (first 10 windows):\n",
              ds.hot_keys[0].c_str());
  int shown = 0;
  for (const auto& [window, avg] : trend.output) {
    if (shown++ >= 10) break;
    std::printf("  week %s: avg rating %s\n", window.c_str(), avg.c_str());
  }
  return 0;
}
