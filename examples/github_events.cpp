// GitHub event analytics — the paper's second scenario (Section V-A-4). An
// infrastructure team stores the public event firehose and analyzes single
// event types ("sub-datasets" keyed by event type). Unlike movie reviews,
// event types are NOT content-clustered, so this example shows (a) DataNet's
// smaller-but-real benefit in that regime and (b) using the ElasticMap as a
// catalog: per-type size estimates without touching the raw data.

#include <cstdio>

#include "apps/word_count.hpp"
#include "common/table.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "workload/github_gen.hpp"

int main() {
  using namespace datanet;

  core::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 128 * 1024;
  cfg.seed = 2023;
  const auto ds = core::make_github_dataset(cfg, /*num_blocks=*/96);
  // ~22 event types per block: a high alpha keeps most exact at tiny cost.
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.6});

  // (b) Catalog view: per-event-type sizes straight from the ElasticMap.
  std::printf("event-type catalog from ElasticMap (no raw-data scan):\n");
  common::TextTable catalog({"event type", "estimated size (KiB)",
                             "actual size (KiB)", "candidate blocks"});
  for (const auto& type : workload::github_event_types()) {
    const auto est = net.estimate_total_size(type);
    if (est == 0) continue;
    const auto actual =
        ds.truth->total_size(workload::subdataset_id(type));
    catalog.add_row({type,
                     common::fmt_double(static_cast<double>(est) / 1024.0, 1),
                     common::fmt_double(static_cast<double>(actual) / 1024.0, 1),
                     std::to_string(net.distribution(type).size())});
  }
  std::printf("%s\n", catalog.to_string().c_str());

  // (a) Analyze IssueEvent comment vocabulary both ways.
  const std::string key = "IssueEvent";
  const auto job = apps::make_word_count_job();
  scheduler::LocalityScheduler base(7);
  const auto without =
      core::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
  scheduler::DataNetScheduler dn;
  const auto with =
      core::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);

  std::printf("WordCount over IssueEvent bodies:\n");
  std::printf("  locality : %.1f simulated s (longest node map %.1f s)\n",
              without.total_seconds(), without.analysis.map_phase_seconds);
  std::printf("  DataNet  : %.1f simulated s (longest node map %.1f s)\n",
              with.total_seconds(), with.analysis.map_phase_seconds);
  std::printf("  gain     : %.1f%% — modest, as the paper reports for "
              "non-clustered sub-datasets\n",
              100.0 * (1.0 - with.total_seconds() / without.total_seconds()));
  return 0;
}
