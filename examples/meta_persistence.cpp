// Meta-data lifecycle for a production deployment (Section V-B-1's "stored
// into a database or distributed among multiple machines"): build the
// ElasticMap once, persist it, reload it lazily on a memory-constrained
// master, shard it across several master machines, and keep it fresh as the
// log grows (incremental extend) — all without rescanning old data.

#include <cstdio>
#include <filesystem>

#include "common/units.hpp"
#include "datanet/experiment.hpp"
#include "elasticmap/index.hpp"
#include "elasticmap/meta_store.hpp"
#include "workload/movie_gen.hpp"

int main() {
  using namespace datanet;
  const auto dir =
      std::filesystem::temp_directory_path() / "datanet_meta_example";
  std::filesystem::create_directories(dir);

  // Day 1: ingest the first month of logs and build the meta-data.
  dfs::DfsOptions dopt;
  dopt.block_size = 64 * 1024;
  dopt.seed = 11;
  dfs::MiniDfs fs(dfs::ClusterTopology::flat(16), dopt);

  workload::MovieGenOptions gopt;
  gopt.num_movies = 800;
  gopt.num_records = 120'000;
  const auto records = workload::MovieLogGenerator(gopt).generate();

  auto writer = fs.create("/logs/reviews");
  const std::size_t first_batch = records.size() * 2 / 3;
  for (std::size_t i = 0; i < first_batch; ++i) {
    writer.append(workload::encode_record(records[i]));
  }

  auto em = elasticmap::ElasticMapArray::build(fs, "/logs/reviews",
                                               {.alpha = 0.3, .build_threads = 0});
  std::printf("built ElasticMap over %llu blocks: %s of meta for %s of data\n",
              static_cast<unsigned long long>(em.num_blocks()),
              common::format_bytes(em.memory_bytes()).c_str(),
              common::format_bytes(em.raw_bytes()).c_str());

  // Persist: one file for the master, and 4 shards for a distributed setup.
  const auto store = (dir / "meta.bin").string();
  elasticmap::MetaStore::save(em, store);
  elasticmap::ShardedMetaStore::save(em, (dir / "meta").string(), 4);
  std::printf("persisted to %s (+4 shards), file size %s\n", store.c_str(),
              common::format_bytes(std::filesystem::file_size(store)).c_str());

  // A memory-constrained master: lazy reader touches one block at a time.
  elasticmap::MetaStore::Reader reader(store);
  const auto mid = reader.num_blocks() / 2;
  const auto meta = reader.load_block(mid);
  std::printf("lazy reader: block %llu holds %llu dominant + %llu tail "
              "sub-datasets (one seek, no full load)\n",
              static_cast<unsigned long long>(mid),
              static_cast<unsigned long long>(meta.num_dominant()),
              static_cast<unsigned long long>(meta.num_tail()));

  // Day 2: more logs arrive; extend covers only the new blocks.
  for (std::size_t i = first_batch; i < records.size(); ++i) {
    writer.append(workload::encode_record(records[i]));
  }
  writer.close();
  const auto added = em.extend(fs);
  std::printf("log grew: %llu new blocks scanned incrementally (now %llu)\n",
              static_cast<unsigned long long>(added),
              static_cast<unsigned long long>(em.num_blocks()));
  elasticmap::MetaStore::save(em, store);  // refresh the persisted copy

  // Serve interactive queries from the inverted index.
  const elasticmap::SubDatasetIndex index(em);
  std::printf("\ntop 5 sub-datasets by exact bytes (from the index):\n");
  for (const auto& [id, bytes] : index.top_subdatasets(5)) {
    std::printf("  %016llx : %s in %zu dominant blocks\n",
                static_cast<unsigned long long>(id),
                common::format_bytes(bytes).c_str(),
                index.dominant_blocks(id).size());
  }

  std::filesystem::remove_all(dir);
  return 0;
}
