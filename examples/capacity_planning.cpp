// Capacity planning with the Section II-B model. Before buying nodes, an
// operator asks: "if I grow the cluster from 32 to 512 nodes, how imbalanced
// do sub-dataset analyses get, and how much meta-data would DataNet need to
// fix it?" This example uses the Gamma workload model (Fig. 2's math), the
// Eq. 5 cost model, and a simulated validation run.

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "elasticmap/cost_model.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"
#include "stats/gamma.hpp"

int main() {
  using namespace datanet;

  // The operator's measured content-clustering parameters (fit offline):
  // per-block sub-dataset size ~ Gamma(k, theta), n blocks.
  constexpr double k = 1.2, theta = 7.0;
  constexpr std::uint64_t n_blocks = 512;

  std::printf("1) Analytic imbalance forecast (Gamma model, Section II-B)\n\n");
  common::TextTable forecast({"nodes", "P(node < E/2)", "P(node > 2E)",
                              "expected stragglers", "expected idlers"});
  for (const std::uint64_t m : {32ull, 64ull, 128ull, 256ull, 512ull}) {
    const auto z = stats::node_workload_distribution(k, theta, n_blocks, m);
    const double slow = z.sf(2.0 * z.mean());
    const double idle = z.cdf(0.5 * z.mean());
    forecast.add_row({std::to_string(m), common::fmt_percent(idle),
                      common::fmt_percent(slow),
                      common::fmt_double(static_cast<double>(m) * slow, 1),
                      common::fmt_double(static_cast<double>(m) * idle, 1)});
  }
  std::printf("%s\n", forecast.to_string().c_str());

  std::printf("2) Meta-data budget (Eq. 5) for 1M sub-datasets per block\n\n");
  common::TextTable budget({"alpha", "per-block meta", "per-PB dataset meta"});
  for (const double alpha : {0.1, 0.3, 0.5}) {
    elasticmap::CostModelParams p;
    p.alpha = alpha;
    const auto per_block = elasticmap::elasticmap_cost_bytes(1'000'000, p);
    const auto blocks_per_pb = (1ull << 50) / (64ull << 20);
    budget.add_row({common::fmt_percent(alpha, 0),
                    common::format_bytes(per_block),
                    common::format_bytes(per_block * blocks_per_pb)});
  }
  std::printf("%s\n", budget.to_string().c_str());

  std::printf("3) Simulated validation at 64 nodes\n\n");
  core::ExperimentConfig cfg;
  cfg.num_nodes = 64;
  cfg.block_size = 64 * 1024;
  cfg.seed = 99;
  const auto ds = core::make_movie_dataset(cfg, 256, 1500);
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  core::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
  core::NoFaults faults;
  core::AnalyticBackend timing;
  const core::SelectionRuntime runtime(read, faults, timing);
  scheduler::LocalityScheduler base(7);
  const auto sb =
      runtime.run(*ds.dfs, ds.path, ds.hot_keys[0], base, nullptr, cfg);
  scheduler::DataNetScheduler dn;
  const auto sd = runtime.run(*ds.dfs, ds.path, ds.hot_keys[0], dn, &net, cfg);
  const auto stat = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> d(v.begin(), v.end());
    return stats::summarize(d);
  };
  const auto b = stat(sb.node_filtered_bytes);
  const auto d = stat(sd.node_filtered_bytes);
  std::printf("  locality : max/mean %.2f, idle nodes (<E/2): %zu\n",
              b.max_over_mean(), [&] {
                std::size_t c = 0;
                for (const auto x : sb.node_filtered_bytes) {
                  c += (static_cast<double>(x) < 0.5 * b.mean);
                }
                return c;
              }());
  std::printf("  DataNet  : max/mean %.2f, idle nodes (<E/2): %zu\n",
              d.max_over_mean(), [&] {
                std::size_t c = 0;
                for (const auto x : sd.node_filtered_bytes) {
                  c += (static_cast<double>(x) < 0.5 * d.mean);
                }
                return c;
              }());
  std::printf("\nconclusion: imbalance grows with cluster size exactly as the "
              "model predicts; a ~%.0f%% hash-map fraction holds it flat.\n",
              30.0);
  return 0;
}
