// Quickstart: the smallest end-to-end use of the DataNet library.
//
//   1. stand up a simulated HDFS cluster and ingest a log dataset;
//   2. build the ElasticMap in one scan;
//   3. query a sub-dataset's distribution;
//   4. run one analysis job with the default locality scheduler and with
//      DataNet's distribution-aware scheduler, and compare.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "apps/word_count.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"

int main() {
  using namespace datanet;

  // 1. A 16-node cluster storing ~64 blocks of movie review logs.
  core::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 64 * 1024;  // scaled-down stand-in for 64 MiB
  cfg.seed = 1;
  const auto ds = core::make_movie_dataset(cfg, /*num_blocks=*/64,
                                           /*num_movies=*/500);
  std::printf("ingested %llu blocks (%llu bytes) of review logs\n",
              static_cast<unsigned long long>(ds.dfs->num_blocks()),
              static_cast<unsigned long long>(ds.dfs->total_bytes()));

  // 2. One scan builds the ElasticMap (hash map for dominant sub-datasets,
  //    bloom filter for the tail).
  const core::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  std::printf("ElasticMap: %llu bytes of meta-data for %llu bytes of raw data "
              "(ratio %.0f:1)\n",
              static_cast<unsigned long long>(net.meta().memory_bytes()),
              static_cast<unsigned long long>(net.meta().raw_bytes()),
              net.meta().representation_ratio());

  // 3. Where does the hottest movie live?
  const auto& movie = ds.hot_keys[0];
  const auto shares = net.distribution(movie);
  std::printf("'%s': ~%llu bytes across %zu candidate blocks (of %llu)\n",
              movie.c_str(),
              static_cast<unsigned long long>(net.estimate_total_size(movie)),
              shares.size(),
              static_cast<unsigned long long>(net.meta().num_blocks()));

  // 4. WordCount over that movie's reviews, both ways.
  const auto job = apps::make_word_count_job();
  scheduler::LocalityScheduler baseline(7);
  const auto without =
      core::run_end_to_end(*ds.dfs, ds.path, movie, baseline, nullptr, job, cfg);
  scheduler::DataNetScheduler datanet_sched;
  const auto with = core::run_end_to_end(*ds.dfs, ds.path, movie, datanet_sched,
                                         &net, job, cfg);

  std::printf("\nWordCount over '%s' (%llu distinct words):\n", movie.c_str(),
              static_cast<unsigned long long>(with.analysis.output.size()));
  std::printf("  locality scheduling : %.1f simulated s\n",
              without.total_seconds());
  std::printf("  DataNet scheduling  : %.1f simulated s  (%.0f%% faster)\n",
              with.total_seconds(),
              100.0 * (1.0 - with.total_seconds() / without.total_seconds()));
  return 0;
}
