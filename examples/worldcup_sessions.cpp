// WorldCup-98-style web log analysis — the paper's introduction motivates
// sub-dataset analysis with exactly this workload (ref [3]): HTTP access
// logs where match days create page-level traffic bursts (burst clustering,
// a different regime from release-decay clustering). This example analyzes
// one bursting page's traffic: request volume trend plus a DataNet/baseline
// comparison, and demonstrates the multi-key API by scheduling a combined
// analysis over the three hottest pages.

#include <cstdio>

#include "apps/word_count.hpp"
#include "common/table.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"
#include "workload/worldcup_gen.hpp"

int main() {
  using namespace datanet;

  // Generate and ingest two months of access logs.
  core::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 64 * 1024;
  cfg.seed = 98;

  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  dfs::MiniDfs fs(dfs::ClusterTopology::flat(cfg.num_nodes), dopt);

  workload::WorldCupGenOptions gopt;
  gopt.num_records = 120'000;
  gopt.seed = cfg.seed;
  const workload::WorldCupLogGenerator gen(gopt);
  workload::ingest(fs, "/logs/access.log", gen.generate());
  const workload::GroundTruth truth(fs, "/logs/access.log");

  const core::DataNet net(fs, "/logs/access.log", {.alpha = 0.3});
  std::printf("access log: %llu blocks, %llu pages; ElasticMap %.1f KiB "
              "(%.0f:1 vs raw)\n\n",
              static_cast<unsigned long long>(fs.num_blocks()),
              static_cast<unsigned long long>(truth.num_subdatasets()),
              static_cast<double>(net.meta().memory_bytes()) / 1024.0,
              net.meta().representation_ratio());

  // The three most burst-clustered pages: ranked by how concentrated their
  // traffic is (largest single-block share of their total) among pages with
  // substantial volume. Those are the match-day pages whose analysis the
  // locality baseline handles worst.
  std::vector<std::string> hot_pages;
  {
    std::vector<std::pair<double, std::string>> ranked;
    for (std::uint64_t p = 0; p < gopt.num_pages; ++p) {
      char key[32];
      std::snprintf(key, sizeof(key), "page_%04llu",
                    static_cast<unsigned long long>(p));
      const auto id = workload::subdataset_id(key);
      const auto total = truth.total_size(id);
      if (total < fs.total_bytes() / 500) continue;  // volume floor
      const auto dist = truth.distribution(id);
      std::uint64_t peak = 0;
      for (const auto v : dist) peak = std::max(peak, v);
      // Concentration: share of the page's traffic in its densest block.
      ranked.emplace_back(static_cast<double>(peak) / static_cast<double>(total),
                          key);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      hot_pages.push_back(ranked[i].second);
    }
  }

  std::printf("most burst-clustered high-volume pages: %s, %s, %s\n\n",
              hot_pages[0].c_str(), hot_pages[1].c_str(), hot_pages[2].c_str());

  // Single-page analysis: client-string word statistics over the burst
  // page's requests (a combine-heavy job, where imbalance hurts most).
  const auto& page = hot_pages[0];
  const auto job = apps::make_word_count_job();

  scheduler::LocalityScheduler base(7);
  const auto without =
      core::run_end_to_end(fs, "/logs/access.log", page, base, nullptr, job, cfg);
  scheduler::DataNetScheduler dn;
  const auto with =
      core::run_end_to_end(fs, "/logs/access.log", page, dn, &net, job, cfg);
  std::printf("traffic analysis of %s: %.1f s -> %.1f s with DataNet "
              "(%.0f%% faster), scanning %llu of %llu blocks\n\n",
              page.c_str(), without.total_seconds(), with.total_seconds(),
              100.0 * (1.0 - with.total_seconds() / without.total_seconds()),
              static_cast<unsigned long long>(with.selection.blocks_scanned),
              static_cast<unsigned long long>(fs.num_blocks()));

  // Multi-key scheduling: one balanced plan covering all three hot pages.
  const auto multi_graph = net.scheduling_graph(std::span(hot_pages));
  scheduler::DataNetScheduler multi_sched;
  std::vector<std::uint64_t> bytes(multi_graph.num_blocks());
  for (std::size_t j = 0; j < multi_graph.num_blocks(); ++j) {
    bytes[j] = fs.block(multi_graph.block(j).block_id).size_bytes;
  }
  const auto rec = scheduler::drain(multi_sched, multi_graph, bytes);
  std::vector<double> loads(rec.node_load.begin(), rec.node_load.end());
  const auto s = stats::summarize(loads);
  std::printf("combined 3-page plan: %zu candidate blocks, per-node load "
              "max/mean %.2f (balanced in one pass)\n",
              multi_graph.num_blocks(), s.max_over_mean());
  return 0;
}
